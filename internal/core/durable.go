package core

import (
	"fmt"

	"rxview/internal/atg"
	"rxview/internal/dag"
	"rxview/internal/reach"
	"rxview/internal/relational"
	"rxview/internal/storage"
	"rxview/internal/viewupdate"
)

// CommitRecord is everything a committed write unit changed, in replayable
// form: the generation it produced, the chronological DAG delta (ΔV at the
// instance level, deletions included — dag.DeltaOp, not the grouped change
// summary) and the executed relational group update ΔR. Replaying the record
// against the state at generation Gen-1 reproduces the state at Gen exactly,
// node identities included.
type CommitRecord struct {
	Gen   uint64
	Delta []dag.DeltaOp
	DR    []relational.Mutation
}

// CommitSink receives the records of a committing write unit before its
// verdict is returned to the caller: an atomic transaction sends exactly one
// record, a non-atomic one sends one per applied stage. A non-nil error from
// the sink fails the commit — atomic groups roll back, non-atomic groups
// stay applied in memory and surface the error. The sink must make the
// records durable (to its configured fsync policy) before returning nil.
type CommitSink func(recs []CommitRecord) error

// SetCommitSink installs the durability hook. afterSync, if non-nil, runs
// after each successful commit with the highest generation the sink
// accepted, once the system is quiescent again — the checkpoint trigger.
// Installing a sink also makes non-atomic transactions open a DAG journal to
// capture per-stage deltas; with a nil sink (the default) the write path is
// exactly the non-durable one.
func (s *System) SetCommitSink(sink CommitSink, afterSync func(gen uint64)) {
	s.sink = sink
	s.afterSync = afterSync
}

// CommitObserver receives the records of each durably committed write unit.
// Observers run synchronously on the write path, after the sink accepted the
// records — a record a crash could still lose is never observed, which is
// what lets a replication tail treat every observed generation as part of
// the primary's durable history. Observers must be fast and must not call
// back into the system.
type CommitObserver func(recs []CommitRecord)

// AddCommitObserver registers a post-durability tap. Observers require a
// commit sink: without one there is no durable history to stream. Not safe
// for concurrent use with the write path — install observers at setup time,
// like the sink itself.
func (s *System) AddCommitObserver(fn CommitObserver) {
	s.observers = append(s.observers, fn)
}

// commitRecords feeds a committing unit's records to the durability sink
// and, only on acceptance, to the observers.
func (s *System) commitRecords(recs []CommitRecord) error {
	if err := s.sink(recs); err != nil {
		return err
	}
	for _, fn := range s.observers {
		fn(recs)
	}
	return nil
}

// ApplyCommitRecord replays one committed record against the live system —
// the follower's apply path. It is Recover's loop body with the closure
// maintained incrementally instead of recomputed at the end: ΔR goes through
// the backend, then the DAG delta op by op with L, M and the translator's
// source index repaired per op (closure union for edge insertions, the
// single-edge half of ∆(M,L)delete for removals — cascades arrive as their
// own ops). The record must continue the current generation exactly; a gap
// means the caller lost part of the stream and must re-sync from a
// checkpoint rather than replay into a wrong state.
func (s *System) ApplyCommitRecord(rec CommitRecord) error {
	if s.txn != nil {
		return ErrTxOpen
	}
	if rec.Gen != s.gen+1 {
		return fmt.Errorf("core: apply record: record for generation %d follows generation %d", rec.Gen, s.gen)
	}
	if err := s.store.Apply(rec.DR); err != nil {
		return fmt.Errorf("core: apply record: generation %d: %w", rec.Gen, err)
	}
	for _, op := range rec.Delta {
		if err := s.DAG.ApplyDelta(op); err != nil {
			return fmt.Errorf("core: apply record: generation %d: %w", rec.Gen, err)
		}
		switch op.Kind {
		case dag.DeltaNodeAdd:
			s.Index.Topo.Append(op.Node)
		case dag.DeltaNodeDel:
			s.Index.Topo.Delete(op.Node)
			s.Index.Matrix.DropNode(op.Node)
		case dag.DeltaEdgeAdd:
			s.Index.Topo.FixEdge(s.DAG, op.Edge.Parent, op.Edge.Child)
			s.Index.Matrix.InsertEdgeClosure(op.Edge.Parent, op.Edge.Child)
			s.Translator.NoteEdgeInserted(op.Edge)
		case dag.DeltaEdgeDel:
			s.Index.DeleteEdgeUpdate(s.DAG, op.Edge)
			s.Translator.NoteEdgeDeleted(op.Edge)
		}
	}
	s.gen = rec.Gen
	return nil
}

// Recover rebuilds a System from durable state: a checkpoint (the backend
// holding the checkpointed instance, the decoded DAG and its serialized
// topological order, at generation gen) plus the log suffix recs. Each
// record is replayed in order — ΔR through the backend, the DAG delta op by
// op with L maintained incrementally (append for node births, swap-repair
// for edge insertions, tombstoning for removals) — and M is computed once at
// the end, which reproduces it exactly: M is uniquely determined as the
// transitive closure of the recovered DAG. Generations must be contiguous
// from gen+1; a gap means the log and checkpoint disagree and recovery
// refuses rather than resurrect a wrong state.
func Recover(c *atg.Compiled, store storage.Backend, d *dag.DAG, order []dag.NodeID, gen uint64, recs []CommitRecord, opts Options) (*System, error) {
	topo := reach.RestoreTopo(order)
	for _, rec := range recs {
		if rec.Gen != gen+1 {
			return nil, fmt.Errorf("core: recover: log record for generation %d follows generation %d", rec.Gen, gen)
		}
		if err := store.Apply(rec.DR); err != nil {
			return nil, fmt.Errorf("core: recover: generation %d: %w", rec.Gen, err)
		}
		for _, op := range rec.Delta {
			if err := d.ApplyDelta(op); err != nil {
				return nil, fmt.Errorf("core: recover: generation %d: %w", rec.Gen, err)
			}
			switch op.Kind {
			case dag.DeltaNodeAdd:
				topo.Append(op.Node)
			case dag.DeltaNodeDel:
				topo.Delete(op.Node)
			case dag.DeltaEdgeAdd:
				topo.FixEdge(d, op.Edge.Parent, op.Edge.Child)
			case dag.DeltaEdgeDel:
				// Removing an edge never invalidates a topological order.
			}
		}
		gen = rec.Gen
	}
	db := store.DB()
	s := &System{
		ATG:        c,
		DB:         db,
		DAG:        d,
		Index:      &reach.Index{Topo: topo, Matrix: reach.Compute(d, topo)},
		Translator: viewupdate.NewTranslator(c, db, d),
		store:      store,
		opts:       opts,
		text:       c.Text(d),
		gen:        gen,
	}
	s.warmIndexes()
	return s, nil
}
