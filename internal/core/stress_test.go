package core

import (
	"math/rand"
	"testing"

	"rxview/internal/workload"
)

// TestSyntheticStress runs a longer mixed workload at a moderate scale and
// validates the full invariant at checkpoints (every op would be O(n²)-ish
// in test time; checkpoints keep it tractable while still covering long
// mutation chains).
func TestSyntheticStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	syn, err := workload.NewSynthetic(workload.SyntheticConfig{NC: 600, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Open(syn.ATG, syn.DB, Options{ForceSideEffects: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	applied, noops := 0, 0
	var ops []workload.Op
	for round := 0; round < 6; round++ {
		class := workload.Class(1 + rng.Intn(3))
		ops = append(ops, syn.InsertWorkload(class, 2, rng.Int63())...)
		ops = append(ops, syn.DeleteWorkload(class, 2, rng.Int63())...)
	}
	for i, op := range ops {
		rep, err := sys.Execute(op.Stmt)
		if err != nil {
			if IsRejected(err) {
				continue
			}
			t.Fatalf("op %d (%s): %v", i, op.Stmt, err)
		}
		if rep.Applied {
			applied++
		} else {
			noops++
		}
		if i%6 == 5 {
			if err := sys.CheckConsistency(); err != nil {
				t.Fatalf("op %d (%s): %v", i, op.Stmt, err)
			}
		}
	}
	if err := sys.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if applied < 5 {
		t.Errorf("only %d ops applied (%d no-ops)", applied, noops)
	}
	t.Logf("applied=%d noops=%d final=%s", applied, noops, sys.Stats())
}
