package core

import (
	"context"
	"time"

	"rxview/internal/reach"
	"rxview/internal/update"
)

// ApplyBatch runs a sequence of XML updates with a single deferred
// maintenance pass over the auxiliary structures. Each ΔX still goes through
// its own validation, XPath evaluation, ΔX→ΔV→ΔR translation and execution
// (the semantics are exactly those of the same sequence of Apply calls), but
// the transitive-closure half of ∆(M,L)insert is accumulated and flushed
// once — per run of consecutive insertions — instead of once per update.
// Deletions read M, so a deletion flushes the pending work before running;
// the batch always flushes before returning, leaving L and M exact.
//
// The batch is not atomic: it stops at the first failing update, with every
// earlier update already applied. The returned reports cover the processed
// prefix (including, as its last element, the report of the failed update —
// for a cancellation that is an unapplied report naming the op that did not
// run, so the error is always attributable to the right update); the flush
// time is folded into the Maintain timing of the last insertion's report, so
// summing Timings.Maintain over the reports gives the true total maintenance
// cost of the batch.
func (s *System) ApplyBatch(ctx context.Context, ops []*update.Op) ([]*Report, error) {
	var pending reach.Pending
	reports := make([]*Report, 0, len(ops))
	lastIns := -1 // index in reports of the last deferred insertion

	flush := func() {
		if pending.Len() == 0 {
			return
		}
		t0 := time.Now()
		s.Index.Flush(&pending)
		if lastIns >= 0 {
			reports[lastIns].Timings.Maintain += time.Since(t0)
		}
	}

	for _, op := range ops {
		if err := ctx.Err(); err != nil {
			flush()
			// The cancelled update never ran; report it unapplied so the
			// caller attributes the error to it, not to the last update
			// that succeeded.
			reports = append(reports, &Report{Op: op.String()})
			return reports, err
		}
		if op.Kind == update.OpDelete {
			// ∆(M,L)delete traverses desc(r[[p]]) through M and needs
			// it to be (a superset of) the true closure.
			flush()
		}
		var rep *Report
		var err error
		if op.Kind == update.OpInsert {
			rep, err = s.apply(ctx, op, &pending)
		} else {
			rep, err = s.apply(ctx, op, nil)
		}
		reports = append(reports, rep)
		if op.Kind == update.OpInsert && rep.Applied {
			lastIns = len(reports) - 1
		}
		if err != nil {
			flush()
			return reports, err
		}
	}
	flush()
	return reports, nil
}
