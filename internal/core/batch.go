package core

import (
	"context"

	"rxview/internal/update"
)

// ApplyBatch runs a sequence of XML updates with a single deferred
// maintenance pass over the auxiliary structures: a one-shot non-atomic
// transaction. Each ΔX still goes through its own validation, XPath
// evaluation, ΔX→ΔV→ΔR translation and execution (the semantics are exactly
// those of the same sequence of Apply calls), but the transitive-closure
// half of ∆(M,L)insert is accumulated on the transaction and flushed once —
// per run of consecutive insertions — instead of once per update.
// Deletions read M, so a deletion flushes the pending work before running;
// the commit always flushes before returning, leaving L and M exact.
//
// The batch is not atomic: it stops at the first failing update, with every
// earlier update already applied. The returned reports cover the processed
// prefix (including, as its last element, the report of the failed update —
// for a cancellation that is an unapplied report naming the op that did not
// run, so the error is always attributable to the right update); the flush
// time is folded into the Maintain timing of the last insertion's report, so
// summing Timings.Maintain over the reports gives the true total maintenance
// cost of the batch. For an all-or-nothing group, use Begin(true).
func (s *System) ApplyBatch(ctx context.Context, ops []*update.Op) ([]*Report, error) {
	t, err := s.Begin(false)
	if err != nil {
		return nil, err
	}
	for _, op := range ops {
		if err := ctx.Err(); err != nil {
			// The cancelled update never ran; report it unapplied so the
			// caller attributes the error to it, not to the last update
			// that succeeded. The stage error outranks any durability
			// failure from the commit — the applied prefix still went to
			// the sink.
			t.reports = append(t.reports, &Report{Op: op.String()})
			_ = t.Commit(ctx)
			return t.Reports(), err
		}
		if _, err := t.Stage(ctx, op); err != nil {
			_ = t.Commit(ctx)
			return t.Reports(), err
		}
	}
	// A non-atomic commit of staged-and-applied updates can only fail in the
	// durability sink; that failure must reach the caller.
	if err := t.Commit(ctx); err != nil {
		return t.Reports(), err
	}
	return t.Reports(), nil
}
