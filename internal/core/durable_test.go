package core

import (
	"context"
	"errors"
	"testing"
)

// White-box tests of the commit-sink contract: the zero-overhead guarantee
// without a sink, per-stage record capture with one, durable-before-verdict
// ordering for atomic groups, and the afterSync trigger.

func TestNonDurableTxnOpensNoJournal(t *testing.T) {
	s := openRegistrar(t, Options{})
	tx, err := s.Begin(false)
	if err != nil {
		t.Fatal(err)
	}
	if tx.journalOwned {
		t.Fatal("non-durable non-atomic txn opened a DAG journal")
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}

	s.SetCommitSink(func([]CommitRecord) error { return nil }, nil)
	tx, err = s.Begin(false)
	if err != nil {
		t.Fatal(err)
	}
	if !tx.journalOwned {
		t.Fatal("durable non-atomic txn did not open a DAG journal")
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
}

func TestSinkGetsOneRecordPerStage(t *testing.T) {
	ctx := context.Background()
	s := openRegistrar(t, Options{})
	var got []CommitRecord
	s.SetCommitSink(func(recs []CommitRecord) error {
		got = append(got, recs...)
		return nil
	}, nil)

	tx, err := s.Begin(false)
	if err != nil {
		t.Fatal(err)
	}
	stmts := []string{
		`insert course(cno="CS111", title="Intro") into .`,
		`insert course(cno="CS112", title="Intro II") into //course[cno="CS111"]/prereq`,
	}
	for _, stmt := range stmts {
		if _, err := tx.Stage(ctx, mustOp(t, s, stmt)); err != nil {
			t.Fatalf("stage %q: %v", stmt, err)
		}
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(stmts) {
		t.Fatalf("sink received %d records for %d stages", len(got), len(stmts))
	}
	for i, rec := range got {
		if rec.Gen != uint64(i+1) {
			t.Fatalf("record %d has generation %d", i, rec.Gen)
		}
		if len(rec.Delta) == 0 || len(rec.DR) == 0 {
			t.Fatalf("record %d is empty: %+v", i, rec)
		}
	}
}

func TestAtomicSinkErrorRollsBack(t *testing.T) {
	ctx := context.Background()
	s := openRegistrar(t, Options{})
	want := stateFingerprint(s)
	sinkErr := errors.New("disk gone")
	s.SetCommitSink(func([]CommitRecord) error { return sinkErr }, nil)

	tx, err := s.Begin(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, stmt := range txGroup {
		if _, err := tx.Stage(ctx, mustOp(t, s, stmt)); err != nil {
			t.Fatalf("stage %q: %v", stmt, err)
		}
	}
	err = tx.Commit(ctx)
	if !errors.Is(err, sinkErr) {
		t.Fatalf("commit error = %v, want the sink error", err)
	}
	// Durable-before-verdict: the sink refused, so the atomic group must
	// leave no trace.
	if got := stateFingerprint(s); got != want {
		t.Fatalf("state changed after refused atomic commit:\n%s\nvs\n%s", got, want)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestNonAtomicSinkErrorKeepsAppliedPrefix(t *testing.T) {
	ctx := context.Background()
	s := openRegistrar(t, Options{})
	sinkErr := errors.New("disk gone")
	s.SetCommitSink(func([]CommitRecord) error { return sinkErr }, nil)

	tx, err := s.Begin(false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Stage(ctx, mustOp(t, s, `insert course(cno="CS111", title="Intro") into .`)); err != nil {
		t.Fatal(err)
	}
	err = tx.Commit(ctx)
	if !errors.Is(err, sinkErr) {
		t.Fatalf("commit error = %v, want the sink error", err)
	}
	// Non-atomic semantics: the stage is already applied in memory; only
	// durability failed.
	if s.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", s.Generation())
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestAfterSyncFiresWithHighestGen(t *testing.T) {
	s := openRegistrar(t, Options{})
	var fired []uint64
	s.SetCommitSink(func([]CommitRecord) error { return nil },
		func(gen uint64) { fired = append(fired, gen) })

	if _, err := s.Execute(`insert course(cno="CS111", title="Intro") into .`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(`insert course(cno="CS112", title="Intro II") into //course[cno="CS111"]/prereq`); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("afterSync fired with %v, want [1 2]", fired)
	}
	// afterSync must see a quiescent system: a checkpoint-style reentrant
	// read must not observe an open transaction.
	s.SetCommitSink(func([]CommitRecord) error { return nil }, func(gen uint64) {
		if s.InTxn() {
			t.Error("afterSync ran with the transaction still open")
		}
	})
	if _, err := s.Execute(`insert student(ssn="S09", name="Ida") into //course[cno="CS112"]/takenBy`); err != nil {
		t.Fatal(err)
	}
}
