package core

import (
	"context"
	"errors"
	"testing"
)

// White-box tests of the replication seam: the commit observer (fires only
// for records the sink accepted) and ApplyCommitRecord (the follower's
// incremental replay, which must reproduce the primary's state exactly —
// node identities, closure matrix and all).

func TestObserverFiresOnlyAfterSinkAccepts(t *testing.T) {
	ctx := context.Background()
	s := openRegistrar(t, Options{})
	sinkErr := errors.New("disk gone")
	fail := false
	s.SetCommitSink(func([]CommitRecord) error {
		if fail {
			return sinkErr
		}
		return nil
	}, nil)
	var seen []uint64
	s.AddCommitObserver(func(recs []CommitRecord) {
		for _, r := range recs {
			seen = append(seen, r.Gen)
		}
	})

	if _, err := s.Execute(`insert course(cno="CS111", title="Intro") into .`); err != nil {
		t.Fatal(err)
	}
	fail = true
	tx, err := s.Begin(true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Stage(ctx, mustOp(t, s, `insert course(cno="CS112", title="Intro II") into .`)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); !errors.Is(err, sinkErr) {
		t.Fatalf("commit error = %v, want the sink error", err)
	}
	if len(seen) != 1 || seen[0] != 1 {
		t.Fatalf("observer saw generations %v, want [1]: a refused commit must never be observed", seen)
	}
}

// TestApplyCommitRecordReplaysTwin drives a mixed workload — one-shot
// applies, an atomic group with a GC cascade, shared-edge insertion and
// removal — on a primary while an observer captures the record stream, then
// replays the stream record by record onto a twin system. The twin must
// track the primary's generation exactly and end bit-identical:
// CheckConsistency on the twin proves the per-op closure maintenance
// (InsertEdgeClosure / DeleteEdgeUpdate / DropNode) equals a recomputation.
func TestApplyCommitRecordReplaysTwin(t *testing.T) {
	ctx := context.Background()
	primary := openRegistrar(t, Options{ForceSideEffects: true})
	twin := openRegistrar(t, Options{ForceSideEffects: true})

	var stream []CommitRecord
	primary.SetCommitSink(func([]CommitRecord) error { return nil }, nil)
	primary.AddCommitObserver(func(recs []CommitRecord) {
		stream = append(stream, recs...)
	})

	apply := func(rec CommitRecord) {
		t.Helper()
		if err := twin.ApplyCommitRecord(rec); err != nil {
			t.Fatalf("replay generation %d: %v", rec.Gen, err)
		}
	}
	next := 0
	drain := func() {
		t.Helper()
		for ; next < len(stream); next++ {
			apply(stream[next])
		}
		if twin.Generation() != primary.Generation() {
			t.Fatalf("twin at generation %d, primary at %d", twin.Generation(), primary.Generation())
		}
	}

	// One-shot applies, including an edge to an already-published node
	// (pure EdgeAdd, no NodeAdd) and its removal (edge delete that does not
	// kill the shared node).
	for _, stmt := range []string{
		`insert course(cno="CS111", title="Intro") into .`,
		`insert course(cno="CS111", title="Intro") into //course[cno="CS320"]/prereq`,
		`delete //course[cno="CS320"]/prereq/course[cno="CS111"]`,
	} {
		if _, err := primary.Execute(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
		drain()
	}

	// An atomic group: one record for the whole group, GC cascade included.
	tx, err := primary.Begin(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, stmt := range txGroup {
		if _, err := tx.Stage(ctx, mustOp(t, primary, stmt)); err != nil {
			t.Fatalf("stage %q: %v", stmt, err)
		}
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	drain()

	// A deletion that garbage-collects a whole subtree.
	if _, err := primary.Execute(`delete //course[cno="CS111"]`); err != nil {
		t.Fatal(err)
	}
	drain()

	if got, want := stateFingerprint(twin), stateFingerprint(primary); got != want {
		t.Fatalf("twin state diverged:\n%s\nvs primary:\n%s", got, want)
	}
	if err := twin.CheckConsistency(); err != nil {
		t.Fatalf("twin consistency after incremental replay: %v", err)
	}

	// A generation gap must be refused, not replayed into a wrong state.
	err = twin.ApplyCommitRecord(CommitRecord{Gen: twin.Generation() + 2})
	if err == nil {
		t.Fatal("gap record applied")
	}
}
