package core

import (
	"time"

	"rxview/internal/update"
	"rxview/internal/viewupdate"
)

// DryRun answers the updatability question for ΔX without changing anything:
// it runs DTD validation, XPath evaluation, side-effect detection and the
// full relational translation, then rolls everything back. The report shows
// what Apply would have done (including ΔR); the returned error is exactly
// what Apply would have returned.
//
// This is the paper's updatability problem (§4.1) as an API: for deletions
// it decides in PTIME (Theorem 1), for insertions it runs the heuristic
// SAT analysis (Theorem 2 makes the exact question NP-complete).
func (s *System) DryRun(op *update.Op) (*Report, error) {
	rep := &Report{Op: op.String()}

	t0 := time.Now()
	if err := update.ValidateAgainstDTD(s.ATG.DTD, op); err != nil {
		return rep, err
	}
	rep.Timings.Validate = time.Since(t0)

	t0 = time.Now()
	res, err := s.evaluator().Eval(op.Path)
	if err != nil {
		return rep, err
	}
	rep.Timings.Eval = time.Since(t0)
	rep.RP, rep.EP = len(res.Selected), len(res.Edges)

	switch op.Kind {
	case update.OpInsert:
		rep.SideEffects = res.HasInsertSideEffects()
		if rep.SideEffects && !s.opts.ForceSideEffects {
			return rep, &SideEffectError{Op: op.String(), Witnesses: len(res.InsertWitnesses)}
		}
		if len(res.Selected) == 0 {
			return rep, nil
		}
		s.DAG.Begin()
		defer s.DAG.Rollback()
		dv, err := update.Xinsert(s.ATG, s.DAG, s.DB, res.Selected, op.Type, op.Attr)
		if err != nil {
			return rep, err
		}
		if len(dv.Inserts) == 0 {
			return rep, nil
		}
		dr, _, err := s.Translator.TranslateInsert(dv.Inserts, dv.NewNodes)
		if err != nil {
			return rep, err
		}
		rep.DR = dr
		rep.DVInserts = len(dv.Inserts)
		rep.Applied = true // would apply
		return rep, nil
	default:
		rep.SideEffects = res.HasDeleteSideEffects()
		if rep.SideEffects && !s.opts.ForceSideEffects {
			return rep, &SideEffectError{Op: op.String(), Witnesses: len(res.DeleteWitnesses)}
		}
		if len(res.Edges) == 0 {
			return rep, nil
		}
		dr, err := s.Translator.TranslateDelete(res.Edges)
		if err != nil {
			return rep, err
		}
		rep.DR = dr
		rep.DVDeletes = len(res.Edges)
		rep.Applied = true
		return rep, nil
	}
}

// Updatable reports whether ΔX can be carried out without relational side
// effects (and, unless ForceSideEffects is set, without XML side effects).
func (s *System) Updatable(op *update.Op) bool {
	_, err := s.DryRun(op)
	return err == nil
}

// ensure viewupdate stays linked for the doc reference above
var _ = viewupdate.RejectedError{}
