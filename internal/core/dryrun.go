package core

import (
	"context"

	"rxview/internal/update"
	"rxview/internal/viewupdate"
)

// DryRun answers the updatability question for ΔX without changing anything:
// it runs DTD validation, XPath evaluation, side-effect detection and the
// full relational translation, then rolls everything back. The report shows
// what Apply would have done (including ΔR); the returned error is exactly
// what Apply would have returned.
//
// This is the paper's updatability problem (§4.1) as an API: for deletions
// it decides in PTIME (Theorem 1), for insertions it runs the heuristic
// SAT analysis (Theorem 2 makes the exact question NP-complete).
func (s *System) DryRun(op *update.Op) (*Report, error) {
	//lint:ignore xviewlint/ctxflow documented context-free convenience variant; callers holding a ctx use DryRunCtx
	return s.DryRunCtx(context.Background(), op)
}

// DryRunCtx is DryRun with cancellation checks between the phases, mirroring
// ApplyCtx. It shares the validation/evaluation/gating prologue with Apply
// (System.stage), so both reject, skip and no-op in exactly the same cases.
func (s *System) DryRunCtx(ctx context.Context, op *update.Op) (*Report, error) {
	rep := &Report{Op: op.String()}
	res, proceed, err := s.stage(ctx, op, rep)
	if !proceed {
		return rep, err
	}

	switch op.Kind {
	case update.OpInsert:
		// A savepoint-scoped journal: standalone DryRun opens its own,
		// inside an open transaction it marks the transaction's journal, so
		// "what would Apply do next" can be asked about staged state too.
		sc := s.beginDAGScope()
		defer sc.abort()
		dv, err := update.Xinsert(s.ATG, s.DAG, s.DB, res.Selected, op.Type, op.Attr)
		if err != nil {
			return rep, err
		}
		if len(dv.Inserts) == 0 {
			return rep, nil
		}
		dr, _, err := s.Translator.TranslateInsert(dv.Inserts, dv.NewNodes)
		if err != nil {
			return rep, err
		}
		if err := ctx.Err(); err != nil {
			return rep, err // mirrors ApplyCtx's post-translation check
		}
		rep.DR = dr
		rep.DVInserts = len(dv.Inserts)
		rep.Applied = true // would apply
		return rep, nil
	default:
		dr, err := s.Translator.TranslateDelete(res.Edges)
		if err != nil {
			return rep, err
		}
		if err := ctx.Err(); err != nil {
			return rep, err // mirrors ApplyCtx's post-translation check
		}
		rep.DR = dr
		rep.DVDeletes = len(res.Edges)
		rep.Applied = true
		return rep, nil
	}
}

// Updatable reports whether ΔX can be carried out without relational side
// effects (and, unless ForceSideEffects is set, without XML side effects).
func (s *System) Updatable(op *update.Op) bool {
	_, err := s.DryRun(op)
	return err == nil
}

// ensure viewupdate stays linked for the doc reference above
var _ = viewupdate.RejectedError{}
