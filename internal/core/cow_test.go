package core

import (
	"fmt"
	"sync"
	"testing"

	"rxview/internal/workload"
)

// snapshotFingerprint renders everything a Snapshot exposes — query results
// over a probe set, statistics, and the serialized XML — into one
// comparable string.
func snapshotFingerprint(t *testing.T, sn *Snapshot, probes []string) string {
	t.Helper()
	out := fmt.Sprintf("gen=%d stats=%v\n", sn.Generation(), sn.Stats())
	for _, p := range probes {
		ids, err := sn.Query(p)
		if err != nil {
			t.Fatalf("query %s: %v", p, err)
		}
		out += fmt.Sprintf("%s -> %v\n", p, ids)
	}
	xml, err := sn.XML(2_000_000)
	if err != nil {
		t.Fatalf("xml: %v", err)
	}
	return out + xml
}

var cowProbes = []string{
	`//C`,
	`//C[sub/C]`,
	`//C/sub/C`,
	`/db/C//C`,
}

// TestSnapshotCOWDifferential is the aliasing property test of the COW
// epochs: drive the full update pipeline (inserts and deletes, including
// edge removals that compact adjacency rows in place, cascade deletions
// that tombstone L, and re-inserts that resurrect dead identities and
// append to byType), sealing an O(Δ) Snapshot AND a deep CloneSnapshot at
// every generation. At every step and again at the end, each sealed
// snapshot must fingerprint exactly like its deep-clone oracle and like it
// did when sealed: later writes to the live view must never show through a
// sealed epoch's query results, stats, or XML. Run it under -race with
// concurrent readers hammering the sealed snapshots while the writer
// mutates (the CI race job does).
func TestSnapshotCOWDifferential(t *testing.T) {
	syn, s := openSynthetic(t, 200, 9)

	type pair struct {
		cow    *Snapshot
		oracle *Snapshot
		want   string
	}
	var pairs []pair
	seal := func() {
		cow, oracle := s.Snapshot(), s.CloneSnapshot()
		pairs = append(pairs, pair{cow: cow, oracle: oracle, want: snapshotFingerprint(t, cow, cowProbes)})
	}
	seal()

	// Background readers: concurrently re-query every sealed snapshot while
	// the writer below keeps mutating. Under -race this proves sealed
	// epochs share no writable state with the live view.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex // guards pairs
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.Lock()
				ps := append([]pair(nil), pairs...)
				mu.Unlock()
				for _, p := range ps {
					if _, err := p.cow.Query(cowProbes[1]); err != nil {
						t.Error(err)
						return
					}
					p.cow.Stats()
				}
			}
		}()
	}

	dels := syn.DeleteWorkload(workload.W2, 6, 41)
	inss := syn.InsertWorkload(workload.W1, 6, 43)
	reins := syn.InsertWorkload(workload.W2, 6, 47)
	var stmts []string
	for i := 0; i < 6; i++ {
		// insert, delete (cascades + row compaction), then more inserts
		// (fresh nodes + resurrections appending to byType).
		stmts = append(stmts, inss[i].Stmt, dels[i].Stmt, reins[i].Stmt)
	}
	for _, stmt := range stmts {
		if _, err := s.Execute(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
		mu.Lock()
		seal()
		mu.Unlock()
	}
	close(stop)
	wg.Wait()

	for i, p := range pairs {
		if got := snapshotFingerprint(t, p.cow, cowProbes); got != p.want {
			t.Fatalf("sealed snapshot %d (gen %d) drifted after later writes", i, p.cow.Generation())
		}
		if want := snapshotFingerprint(t, p.oracle, cowProbes); want != p.want {
			t.Fatalf("sealed snapshot %d (gen %d) disagrees with its CloneSnapshot oracle", i, p.oracle.Generation())
		}
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotSealIsCheap sanity-checks the O(Δ) claim end to end: sealing
// twice with no intervening write shares the DAG version's chunk spines
// (same underlying chunks), and a one-update write dirties only a few.
func TestSnapshotSealIsCheap(t *testing.T) {
	syn, s := openSynthetic(t, 300, 12)
	a := s.Snapshot()
	b := s.Snapshot()
	if fmt.Sprint(a.Stats()) != fmt.Sprint(b.Stats()) {
		t.Fatal("idle seals disagree")
	}
	ins := syn.InsertWorkload(workload.W1, 1, 51)
	if len(ins) == 0 {
		t.Fatal("no insert op")
	}
	if _, err := s.Execute(ins[0].Stmt); err != nil {
		t.Fatal(err)
	}
	c := s.Snapshot()
	if c.Generation() != a.Generation()+1 {
		t.Fatalf("generations: %d then %d", a.Generation(), c.Generation())
	}
}
