// Package core is the public facade of the system: it wires together the
// full update-processing framework of Fig.3 in the paper. A System holds the
// published database I, the DAG compression of the XML view T = σ(I) with
// its relational coding V, the auxiliary structures L and M, and the source
// index of the relational translator. XML updates go through the three
// phases of §2.4: DTD validation, ΔX → ΔV translation (with XPath evaluation
// and side-effect detection on the DAG), and ΔV → ΔR translation; then ΔR is
// applied to I, ΔV to V, and the maintenance algorithms repair L and M.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"rxview/internal/atg"
	"rxview/internal/dag"
	"rxview/internal/obs"
	"rxview/internal/reach"
	"rxview/internal/relational"
	"rxview/internal/storage"
	"rxview/internal/update"
	"rxview/internal/viewupdate"
	"rxview/internal/xpath"
)

// Options configures update processing.
type Options struct {
	// ForceSideEffects carries out updates that have XML side effects
	// under the revised semantics of §2.1 (the change applies to every
	// occurrence of the affected shared subtree). When false, such updates
	// return a *SideEffectError so the caller can consult the user.
	ForceSideEffects bool
	// MaskLimit bounds the per-node state-set count in side-effect
	// detection; see xpath.Evaluator.
	MaskLimit int
	// SideEffectPolicy, when non-nil, decides side-effecting updates case
	// by case and takes precedence over ForceSideEffects. It is the
	// "consult the user" step of §2.1 as a programmable hook.
	SideEffectPolicy func(SideEffectInfo) Decision
}

// Decision is a side-effect policy's verdict on one update.
type Decision int

// Policy decisions.
const (
	// DecisionReject refuses the update with a *SideEffectError.
	DecisionReject Decision = iota
	// DecisionApply carries the update out at every occurrence of the
	// shared subtree (the revised semantics of §2.1).
	DecisionApply
	// DecisionSkip drops the update silently: no error, nothing applied.
	DecisionSkip
)

// SideEffectInfo describes a detected XML side effect for a policy.
type SideEffectInfo struct {
	Op        string // the update, rendered
	Delete    bool   // deletion (vs insertion)
	Targets   int    // |r[[p]]|
	Witnesses int    // occurrences of the shared subtree outside r[[p]]
}

// decide resolves a detected side effect against the configured policy.
func (o Options) decide(info SideEffectInfo) Decision {
	if o.SideEffectPolicy != nil {
		return o.SideEffectPolicy(info)
	}
	if o.ForceSideEffects {
		return DecisionApply
	}
	return DecisionReject
}

// gateSideEffect consults the policy for one detected side effect. It
// returns skip=true for DecisionSkip (the caller no-ops) and a
// *SideEffectError for DecisionReject; (false, nil) means carry on under
// the revised semantics.
func (s *System) gateSideEffect(op *update.Op, targets, witnesses int, del bool) (skip bool, err error) {
	switch s.opts.decide(SideEffectInfo{
		Op:        op.String(),
		Delete:    del,
		Targets:   targets,
		Witnesses: witnesses,
	}) {
	case DecisionSkip:
		return true, nil
	case DecisionApply:
		return false, nil
	default:
		return false, &SideEffectError{Op: op.String(), Witnesses: witnesses}
	}
}

// SideEffectError reports that an update would touch unselected occurrences
// of a shared subtree. Retry with ForceSideEffects to proceed under the
// revised semantics.
type SideEffectError struct {
	Op        string
	Witnesses int
}

func (e *SideEffectError) Error() string {
	return fmt.Sprintf("core: %s has XML side effects (%d witness occurrence(s)); re-run with ForceSideEffects to apply at every occurrence", e.Op, e.Witnesses)
}

// Timings breaks an update into the phases the paper's Fig.11 reports:
// (a) XPath evaluation, (b) translation ΔX→ΔV→ΔR plus execution, and
// (c) maintenance of the auxiliary structures (background in the paper).
type Timings struct {
	Validate  time.Duration
	Eval      time.Duration // (a)
	Translate time.Duration // (b): ΔX→ΔV and ΔV→ΔR (= XToDV + DVToDR)
	XToDV     time.Duration // Algorithm Xinsert / Xdelete (Figs.5–6)
	DVToDR    time.Duration // Algorithm insert / delete (§4)
	Apply     time.Duration // (b): executing ΔR and ΔV
	Maintain  time.Duration // (c): ∆(M,L)insert / ∆(M,L)delete
}

// Total sums all phases.
func (t Timings) Total() time.Duration {
	return t.Validate + t.Eval + t.Translate + t.Apply + t.Maintain
}

// Report describes one processed update.
type Report struct {
	Op          string
	Applied     bool
	RP          int // |r[[p]]|
	EP          int // |Ep(r)|
	SideEffects bool
	DVInserts   int
	DVDeletes   int
	DR          []relational.Mutation
	Removed     int // garbage-collected nodes
	Timings     Timings
}

// System is a published XML view with update support.
type System struct {
	ATG        *atg.Compiled
	DB         *relational.Database // the storage backend's in-memory image (== store.DB())
	DAG        *dag.DAG
	Index      *reach.Index
	Translator *viewupdate.Translator

	store     storage.Backend // every ΔR mutation goes through here
	sink      CommitSink      // durability hook, nil when the view is not durable
	afterSync func(gen uint64)
	observers []CommitObserver // replication taps; fire only after the sink accepts

	opts Options
	text func(dag.NodeID) (string, bool)
	gen  uint64 // count of committed write units; see Generation
	txn  *Txn   // the open transaction, if any (see Begin)
}

// Open publishes σ(I) as a DAG, builds L, M and the source index, and
// returns the system, backed by the in-memory store.
func Open(c *atg.Compiled, db *relational.Database, opts Options) (*System, error) {
	return OpenBackend(c, storage.NewMemory(db), opts)
}

// OpenBackend is Open over a pluggable storage backend: publication and
// query evaluation read the backend's in-memory image, and every mutation
// the update pipeline produces is applied through the backend.
func OpenBackend(c *atg.Compiled, store storage.Backend, opts Options) (*System, error) {
	db := store.DB()
	d, err := c.PublishDAG(db)
	if err != nil {
		return nil, err
	}
	s := &System{
		ATG:        c,
		DB:         db,
		DAG:        d,
		Index:      reach.BuildIndex(d),
		Translator: viewupdate.NewTranslator(c, db, d),
		store:      store,
		opts:       opts,
		text:       c.Text(d),
	}
	s.warmIndexes()
	return s, nil
}

// Store returns the storage backend the system mutates through.
func (s *System) Store() storage.Backend { return s.store }

// warmIndexes pre-builds the secondary hash indexes on every column that a
// rule query can join through, so the first update does not pay the build.
func (s *System) warmIndexes() {
	for _, r := range s.ATG.QueryRules() {
		q := r.Query
		for _, p := range q.Where {
			for _, o := range []relational.Operand{p.Left, p.Right} {
				if o.IsCol() {
					if rel := s.DB.Rel(q.From[o.Tab].Table); rel != nil {
						rel.BuildIndex(o.Col)
					}
				}
			}
		}
	}
}

// pathCache is the process-wide compiled-path LRU: every query surface —
// live System, frozen Snapshot, and the server handlers above them —
// parses through it, so a hot query text is compiled once per process, not
// once per request. Compiled paths are immutable, which is what makes the
// sharing sound; parse errors are cached too (the malformed-query fast
// path: no re-parse, no evaluator allocation).
var pathCache = xpath.NewCache(4096)

// ParsePath compiles an XPath through the shared compiled-path cache.
func ParsePath(path string) (*xpath.Path, error) {
	return pathCache.Parse(path)
}

// PathCacheStats returns the shared compiled-path cache's hit/miss
// counters (process-wide, monotone).
func PathCacheStats() (hits, misses uint64) {
	return pathCache.Stats()
}

// evaluator returns a fresh XPath evaluator over the current view.
func (s *System) evaluator() *xpath.Evaluator {
	return &xpath.Evaluator{
		D:         s.DAG,
		Topo:      s.Index.Topo,
		Text:      s.text,
		MaskLimit: s.opts.MaskLimit,
	}
}

// Query evaluates an XPath expression and returns r[[p]].
//
// xviewlint:hot-path
func (s *System) Query(path string) ([]dag.NodeID, error) {
	var t0 time.Time
	if obs.Enabled() {
		t0 = time.Now()
	}
	p, err := ParsePath(path)
	if err != nil {
		return nil, err
	}
	res, err := s.evaluator().Eval(p)
	if err != nil {
		return nil, err
	}
	if obs.Enabled() {
		observeQueryEval(time.Since(t0))
	}
	return res.Selected, nil
}

// Eval evaluates a parsed path, returning the full result (selection, Ep,
// side-effect witnesses).
func (s *System) Eval(p *xpath.Path) (*xpath.Result, error) {
	return s.evaluator().Eval(p)
}

// Execute parses and applies a textual update statement.
func (s *System) Execute(stmt string) (*Report, error) {
	op, err := update.ParseStatement(s.ATG, stmt)
	if err != nil {
		return nil, err
	}
	return s.Apply(op)
}

// Insert applies insert (elemType, attr) into path.
func (s *System) Insert(path string, elemType string, attr relational.Tuple) (*Report, error) {
	p, err := ParsePath(path)
	if err != nil {
		return nil, err
	}
	return s.Apply(&update.Op{Kind: update.OpInsert, Path: p, Type: elemType, Attr: attr})
}

// Delete applies delete path.
func (s *System) Delete(path string) (*Report, error) {
	p, err := ParsePath(path)
	if err != nil {
		return nil, err
	}
	return s.Apply(&update.Op{Kind: update.OpDelete, Path: p})
}

// Apply runs the full pipeline for one XML update ΔX.
func (s *System) Apply(op *update.Op) (*Report, error) {
	//lint:ignore xviewlint/ctxflow documented context-free convenience variant; callers holding a ctx use ApplyCtx
	return s.ApplyCtx(context.Background(), op)
}

// ApplyCtx is Apply with cancellation checks between the three phases of
// §2.4: after DTD validation, after XPath evaluation (phase a), and after
// translation + execution (phase b) before the maintenance of L and M
// (phase c). Once ΔR has been executed the update is carried through —
// cancellation never leaves the auxiliary structures stale.
//
// It is a one-shot transaction: stage the single update, commit. With one
// member, prefix semantics and atomicity coincide.
func (s *System) ApplyCtx(ctx context.Context, op *update.Op) (*Report, error) {
	t, err := s.Begin(false)
	if err != nil {
		return &Report{Op: op.String()}, err
	}
	rep, err := t.Stage(ctx, op)
	if cerr := t.Commit(ctx); err == nil && cerr != nil {
		err = cerr
	}
	return rep, err
}

// apply runs one staged update inside transaction t (never nil: every write
// path goes through a Txn).
//
// xviewlint:hot-path
func (s *System) apply(ctx context.Context, op *update.Op, t *Txn) (*Report, error) {
	rep := &Report{Op: op.String()}
	res, proceed, err := s.stage(ctx, op, rep)
	if !proceed {
		return rep, err
	}
	if op.Kind == update.OpInsert {
		err = s.applyInsert(ctx, op, res, rep, t)
	} else {
		err = s.applyDelete(ctx, op, res, rep, t)
	}
	if rep.Applied && obs.Enabled() {
		observeTimings(rep.Timings)
	}
	return rep, err
}

// stage runs the phases Apply and DryRun share — DTD validation, XPath
// evaluation, side-effect gating, with cancellation checks in between —
// filling rep as it goes. proceed=false means the caller returns (rep, err)
// as is: a rejection when err is non-nil, a no-op otherwise. Keeping this
// in one place is what makes DryRun's contract ("the error is exactly what
// Apply would have returned") hold by construction.
func (s *System) stage(ctx context.Context, op *update.Op, rep *Report) (res *xpath.Result, proceed bool, err error) {
	t0 := time.Now()
	if err := update.ValidateAgainstDTD(s.ATG.DTD, op); err != nil {
		return nil, false, err
	}
	rep.Timings.Validate = time.Since(t0)
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}

	t0 = time.Now()
	res, err = s.evaluator().Eval(op.Path)
	if err != nil {
		return nil, false, err
	}
	rep.Timings.Eval = time.Since(t0)
	rep.RP, rep.EP = len(res.Selected), len(res.Edges)
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}

	if op.Kind == update.OpInsert {
		rep.SideEffects = res.HasInsertSideEffects()
		if rep.SideEffects {
			if skip, err := s.gateSideEffect(op, len(res.Selected), len(res.InsertWitnesses), false); skip || err != nil {
				return nil, false, err
			}
		}
		if len(res.Selected) == 0 {
			return nil, false, nil // nothing matched: a no-op, not an error
		}
	} else {
		rep.SideEffects = res.HasDeleteSideEffects()
		if rep.SideEffects {
			if skip, err := s.gateSideEffect(op, len(res.Selected), len(res.DeleteWitnesses), true); skip || err != nil {
				return nil, false, err
			}
		}
		if len(res.Edges) == 0 {
			return nil, false, nil
		}
	}
	return res, true, nil
}

func (s *System) applyInsert(ctx context.Context, op *update.Op, res *xpath.Result, rep *Report, t *Txn) error {
	t0 := time.Now()
	sc := s.beginDAGScope()
	dv, err := update.Xinsert(s.ATG, s.DAG, s.DB, res.Selected, op.Type, op.Attr)
	if err != nil {
		sc.abort()
		return err
	}
	rep.Timings.XToDV = time.Since(t0)
	if len(dv.Inserts) == 0 {
		sc.abort() // the edge(s) already exist: nothing to do
		rep.Timings.Translate = rep.Timings.XToDV
		return nil
	}
	t0 = time.Now()
	dr, induced, err := s.Translator.TranslateInsert(dv.Inserts, dv.NewNodes)
	if err != nil {
		sc.abort()
		return err
	}
	rep.Timings.DVToDR = time.Since(t0)
	rep.Timings.Translate = rep.Timings.XToDV + rep.Timings.DVToDR
	if err := ctx.Err(); err != nil {
		sc.abort() // nothing executed yet: cancellation is clean
		return err
	}

	t0 = time.Now()
	if err := s.store.Apply(dr); err != nil {
		sc.abort()
		return err
	}
	// Materialize induced content (children the new base tuples generate
	// under freshly published nodes) from the post-ΔR database.
	for _, ie := range induced {
		croot, err := s.ATG.PublishSubtree(s.DAG, s.DB, ie.ChildType, ie.Attr)
		if err != nil {
			// A failure here is an internal inconsistency, not a user
			// rejection; unwind ΔR too so view and database stay aligned.
			sc.abort()
			if uerr := undoMutations(s.store, dr); uerr != nil {
				return fmt.Errorf("core: publishing induced %s%s: %w (and %w)", ie.ChildType, ie.Attr, err, uerr)
			}
			return fmt.Errorf("core: publishing induced %s%s: %w", ie.ChildType, ie.Attr, err)
		}
		s.DAG.AddEdge(ie.Parent, croot)
	}
	newNodes, edgeAdds, _ := sc.changes()
	sc.keep()
	if t.atomic {
		t.dbLog = append(t.dbLog, dr...)
	}
	for _, e := range edgeAdds {
		s.Translator.NoteEdgeInserted(e)
		if t.atomic {
			t.noteLog = append(t.noteLog, noteRec{edge: e, inserted: true})
		}
	}
	rep.DR = dr
	rep.DVInserts = len(edgeAdds)
	rep.Applied = true
	rep.Timings.Apply = time.Since(t0)

	// Maintenance of L and M (background in the paper's framework). The
	// matrix half is deferred transaction-wide: L must be current for the
	// next stage's XPath evaluation, but no insert phase reads M, so its
	// closure pairs are queued on the transaction and flushed once — at
	// Commit, or before the next staged deletion.
	t0 = time.Now()
	s.Index.DeferInsertUpdate(s.DAG, newNodes, edgeAdds, &t.pending)
	rep.Timings.Maintain = time.Since(t0)
	return nil
}

func (s *System) applyDelete(ctx context.Context, op *update.Op, res *xpath.Result, rep *Report, t *Txn) error {
	t0 := time.Now()
	dv := update.Xdelete(res.Edges)
	rep.Timings.XToDV = time.Since(t0)
	t0 = time.Now()
	dr, err := s.Translator.TranslateDelete(dv.Deletes)
	if err != nil {
		return err
	}
	rep.Timings.DVToDR = time.Since(t0)
	rep.Timings.Translate = rep.Timings.XToDV + rep.Timings.DVToDR
	if err := ctx.Err(); err != nil {
		return err // ΔR not executed yet: cancellation is clean
	}

	t0 = time.Now()
	if err := s.store.Apply(dr); err != nil {
		return err
	}
	if t.atomic {
		t.dbLog = append(t.dbLog, dr...)
	}
	for _, e := range dv.Deletes {
		s.DAG.RemoveEdge(e.Parent, e.Child)
		s.noteDeleted(t, e)
	}
	rep.DR = dr
	rep.DVDeletes = len(dv.Deletes)
	rep.Applied = true
	rep.Timings.Apply = time.Since(t0)

	t0 = time.Now()
	cascade, removed := s.Index.DeleteUpdate(s.DAG, res.Selected, dv.Deletes)
	for _, e := range cascade {
		s.noteDeleted(t, e)
	}
	rep.Removed = len(removed)
	rep.DVDeletes += len(cascade)
	rep.Timings.Maintain = time.Since(t0)
	return nil
}

// noteDeleted keeps the translator's source index current for a removed
// edge, recording the adjustment for inverse replay in atomic transactions.
func (s *System) noteDeleted(t *Txn, e dag.Edge) {
	s.Translator.NoteEdgeDeleted(e)
	if t.atomic {
		t.noteLog = append(t.noteLog, noteRec{edge: e})
	}
}

// CheckConsistency verifies the system invariant ΔX(T) = σ(ΔR(I)): the
// incrementally maintained DAG must be isomorphic to a fresh publication of
// the current database, L must be a valid topological order and M the exact
// transitive closure, and the translator's source index must match a
// rebuild.
func (s *System) CheckConsistency() error {
	fresh, err := s.ATG.PublishDAG(s.DB)
	if err != nil {
		return fmt.Errorf("core: republish: %w", err)
	}
	if err := EquivalentDAGs(s.DAG, fresh); err != nil {
		return fmt.Errorf("core: view drift: %w", err)
	}
	if err := s.Index.Validate(s.DAG); err != nil {
		return fmt.Errorf("core: index drift: %w", err)
	}
	return nil
}

// EquivalentDAGs compares two DAGs up to node identity (type, attribute):
// same node set, same edge set.
func EquivalentDAGs(a, b *dag.DAG) error {
	keyOf := func(d *dag.DAG, id dag.NodeID) string {
		return d.Type(id) + "(" + d.Attr(id).String() + ")"
	}
	aN := map[string]bool{}
	for _, id := range a.Nodes() {
		aN[keyOf(a, id)] = true
	}
	bN := map[string]bool{}
	for _, id := range b.Nodes() {
		bN[keyOf(b, id)] = true
	}
	for k := range aN {
		if !bN[k] {
			return fmt.Errorf("node %s missing from republished view", k)
		}
	}
	for k := range bN {
		if !aN[k] {
			return fmt.Errorf("node %s missing from maintained view", k)
		}
	}
	edges := func(d *dag.DAG) map[string]bool {
		out := map[string]bool{}
		for _, u := range d.Nodes() {
			for _, v := range d.Children(u) {
				out[keyOf(d, u)+"→"+keyOf(d, v)] = true
			}
		}
		return out
	}
	aE, bE := edges(a), edges(b)
	for k := range aE {
		if !bE[k] {
			return fmt.Errorf("edge %s missing from republished view", k)
		}
	}
	for k := range bE {
		if !aE[k] {
			return fmt.Errorf("edge %s missing from maintained view", k)
		}
	}
	return nil
}

// ErrTreeTooLarge re-exports the unfolding budget error.
var ErrTreeTooLarge = dag.ErrTreeTooLarge

// WriteXML serializes the (unfolded) XML view; maxNodes bounds the tree size
// (recursive views can be exponentially larger than their DAG).
func (s *System) WriteXML(w io.Writer, maxNodes int) error {
	tree, err := s.DAG.Unfold(s.DAG.Root(), s.text, maxNodes)
	if err != nil {
		return err
	}
	return tree.WriteXML(w)
}

// XML returns the serialized view, or an error string if it exceeds the
// budget.
func (s *System) XML(maxNodes int) (string, error) {
	var b writerBuilder
	if err := s.WriteXML(&b, maxNodes); err != nil {
		return "", err
	}
	return b.String(), nil
}

type writerBuilder struct{ data []byte }

func (w *writerBuilder) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}
func (w *writerBuilder) String() string { return string(w.data) }

// IsRejected reports whether an error means the update was rejected by the
// relational translation (as opposed to an internal failure).
func IsRejected(err error) bool {
	var rej *viewupdate.RejectedError
	return errors.As(err, &rej)
}

// IsSideEffect reports whether an error is a side-effect consultation.
func IsSideEffect(err error) bool {
	var se *SideEffectError
	return errors.As(err, &se)
}
