package core

import (
	"testing"

	"rxview/internal/update"
	"rxview/internal/workload"
)

func parse(t *testing.T, s *System, stmt string) *update.Op {
	t.Helper()
	op, err := update.ParseStatement(s.ATG, stmt)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func TestDryRunLeavesStateUntouched(t *testing.T) {
	s := openRegistrar(t, Options{ForceSideEffects: true})
	before := s.Stats()

	// A would-apply insertion.
	op := parse(t, s, `insert course(cno="CS777", title="Future") into //course[cno="CS650"]/prereq`)
	rep, err := s.DryRun(op)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Applied || len(rep.DR) == 0 {
		t.Fatalf("dry-run report = %+v", rep)
	}
	if got := s.Stats(); got != before {
		t.Fatalf("dry run changed state: %+v vs %+v", got, before)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// The database must not contain the dry-run tuples.
	if s.DB.Rel("course").Len() != 4 {
		t.Error("dry run inserted base tuples")
	}

	// A would-apply deletion.
	op = parse(t, s, `delete //course[cno="CS320"]//student[ssn="S02"]`)
	rep, err = s.DryRun(op)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Applied || len(rep.DR) != 1 {
		t.Fatalf("dry-run report = %+v", rep)
	}
	if got := s.Stats(); got != before {
		t.Fatal("dry run changed state")
	}

	// The real thing still works afterwards.
	if _, err := s.Apply(op); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestDryRunMatchesApplyDecision(t *testing.T) {
	stmts := []string{
		`insert course(cno="CS777", title="Future") into //course[cno="CS650"]/prereq`,
		`insert course(cno="EE100", title="Circuits") into .`, // rejected (dept=EE)
		`delete //course[cno="CS320"]//student[ssn="S02"]`,
		`delete //course[cno="CS999"]`, // no-op
		`delete //course/cno`,          // DTD violation
	}
	for _, stmt := range stmts {
		dry := openRegistrar(t, Options{ForceSideEffects: true})
		wet := openRegistrar(t, Options{ForceSideEffects: true})
		opD := parse(t, dry, stmt)
		opW := parse(t, wet, stmt)
		repD, errD := dry.DryRun(opD)
		repW, errW := wet.Apply(opW)
		if (errD == nil) != (errW == nil) {
			t.Errorf("%s: dry err=%v, apply err=%v", stmt, errD, errW)
			continue
		}
		if errD == nil && repD.Applied != repW.Applied {
			t.Errorf("%s: dry applied=%v, apply applied=%v", stmt, repD.Applied, repW.Applied)
		}
		if errD == nil && len(repD.DR) != len(repW.DR) {
			t.Errorf("%s: dry |ΔR|=%d, apply |ΔR|=%d", stmt, len(repD.DR), len(repW.DR))
		}
	}
}

func TestUpdatable(t *testing.T) {
	s := openRegistrar(t, Options{ForceSideEffects: true})
	if !s.Updatable(parse(t, s, `delete //course[cno="CS320"]//student[ssn="S02"]`)) {
		t.Error("enroll-backed deletion should be updatable")
	}
	if s.Updatable(parse(t, s, `delete course[cno="CS320"]`)) {
		t.Error("top-level-only CS320 deletion is not updatable (course row shared with prereq edge)")
	}
	if s.Updatable(parse(t, s, `insert course(cno="EE100", title="Circuits") into .`)) {
		t.Error("EE100 top-level insertion is not updatable")
	}
}

func TestDryRunSideEffectGate(t *testing.T) {
	reg := workload.MustRegistrar()
	s, err := Open(reg.ATG, reg.DB, Options{}) // no force
	if err != nil {
		t.Fatal(err)
	}
	op := parse(t, s, `insert course(cno="CS777", title="X") into course[cno="CS650"]//course[cno="CS320"]/prereq`)
	if _, err := s.DryRun(op); !IsSideEffect(err) {
		t.Errorf("err = %v, want side-effect gate", err)
	}
}
