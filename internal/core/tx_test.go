package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"rxview/internal/update"
)

// stateFingerprint renders everything a transaction must restore on
// rollback: the DAG (node identities with exact sibling order), the
// database (every tuple of every table), the exact entry sequence of L, the
// full pair set of M, and the generation. Two states with equal
// fingerprints are indistinguishable to every read and write path.
func stateFingerprint(s *System) string {
	var b strings.Builder
	fmt.Fprintf(&b, "gen=%d\n", s.Generation())
	b.WriteString("dag:\n")
	for _, u := range s.DAG.Nodes() {
		fmt.Fprintf(&b, "  %s(%s):", s.DAG.Type(u), s.DAG.Attr(u))
		for _, v := range s.DAG.Children(u) {
			fmt.Fprintf(&b, " %s(%s)", s.DAG.Type(v), s.DAG.Attr(v))
		}
		b.WriteString("\n")
	}
	b.WriteString("db:\n")
	for _, name := range s.DB.Schema.TableNames() {
		rows := []string{}
		for _, tup := range s.DB.Rel(name).Tuples() {
			rows = append(rows, tup.String())
		}
		sort.Strings(rows)
		fmt.Fprintf(&b, "  %s: %s\n", name, strings.Join(rows, " "))
	}
	b.WriteString("L:")
	for _, id := range s.Index.Topo.Nodes() {
		fmt.Fprintf(&b, " %s(%s)", s.DAG.Type(id), s.DAG.Attr(id))
	}
	b.WriteString("\nM:\n")
	for _, d := range s.DAG.Nodes() {
		ancs := []string{}
		for a := range s.Index.Matrix.Ancestors(d) {
			ancs = append(ancs, fmt.Sprintf("%s(%s)", s.DAG.Type(a), s.DAG.Attr(a)))
		}
		sort.Strings(ancs)
		fmt.Fprintf(&b, "  %s(%s) < %s\n", s.DAG.Type(d), s.DAG.Attr(d), strings.Join(ancs, " "))
	}
	return b.String()
}

func mustOp(t *testing.T, s *System, stmt string) *update.Op {
	t.Helper()
	op, err := update.ParseStatement(s.ATG, stmt)
	if err != nil {
		t.Fatalf("parse %q: %v", stmt, err)
	}
	return op
}

// The canonical happy-path group: fresh course CS111 with two prereq edges
// plus a deletion, exercising insert deferral, the flush-before-delete path
// and the GC cascade inside one transaction.
var txGroup = []string{
	`insert course(cno="CS111", title="Intro") into .`,
	`insert course(cno="CS112", title="Intro II") into //course[cno="CS111"]/prereq`,
	`delete //course[cno="CS320"]//student[ssn="S02"]`,
	`insert student(ssn="S09", name="Ida") into //course[cno="CS112"]/takenBy`,
}

func TestTxnCommitStateEqualsSequentialApplies(t *testing.T) {
	ctx := context.Background()
	txSys := openRegistrar(t, Options{})
	seqSys := openRegistrar(t, Options{})

	tx, err := txSys.Begin(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, stmt := range txGroup {
		if _, err := tx.Stage(ctx, mustOp(t, txSys, stmt)); err != nil {
			t.Fatalf("stage %q: %v", stmt, err)
		}
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	for _, stmt := range txGroup {
		if _, err := seqSys.Execute(stmt); err != nil {
			t.Fatalf("apply %q: %v", stmt, err)
		}
	}

	txFP, seqFP := stateFingerprint(txSys), stateFingerprint(seqSys)
	// Generations differ by design: one per transaction vs one per update.
	if txSys.Generation() != 1 {
		t.Fatalf("tx generation = %d, want 1", txSys.Generation())
	}
	if seqSys.Generation() != uint64(len(txGroup)) {
		t.Fatalf("seq generation = %d, want %d", seqSys.Generation(), len(txGroup))
	}
	txFP = strings.Replace(txFP, "gen=1\n", "gen=*\n", 1)
	seqFP = strings.Replace(seqFP, fmt.Sprintf("gen=%d\n", len(txGroup)), "gen=*\n", 1)
	if txFP != seqFP {
		t.Fatalf("transaction state differs from sequential applies:\n--- tx ---\n%s\n--- seq ---\n%s", txFP, seqFP)
	}
	if err := txSys.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestTxnMiddleRejectionUnwindsToPreBegin(t *testing.T) {
	ctx := context.Background()
	s := openRegistrar(t, Options{}) // no ForceSideEffects: shared-subtree insert rejects
	want := stateFingerprint(s)

	tx, err := s.Begin(true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Stage(ctx, mustOp(t, s, txGroup[0])); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Stage(ctx, mustOp(t, s, txGroup[1])); err != nil {
		t.Fatal(err)
	}
	// CS320's prereq node is shared: inserting under it has XML side effects
	// and must be rejected, dooming the group.
	rejStmt := `insert course(cno="CS240X", title="X") into course[cno="CS650"]//course[cno="CS320"]/prereq`
	_, serr := tx.Stage(ctx, mustOp(t, s, rejStmt))
	if !IsSideEffect(serr) {
		t.Fatalf("stage err = %v, want side-effect rejection", serr)
	}
	if tx.Err() == nil || tx.ErrOp() == "" {
		t.Fatal("transaction not doomed after rejection")
	}
	// Later stages are refused with the group's error.
	if _, err := tx.Stage(ctx, mustOp(t, s, txGroup[3])); !IsSideEffect(err) {
		t.Fatalf("stage after doom = %v, want the doom error", err)
	}
	if err := tx.Commit(ctx); !IsSideEffect(err) {
		t.Fatalf("commit = %v, want the doom error", err)
	}
	if got := stateFingerprint(s); got != want {
		t.Fatalf("state after doomed commit differs from pre-Begin:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// The view is usable again.
	if _, err := s.Execute(txGroup[0]); err != nil {
		t.Fatal(err)
	}
}

func TestTxnExplicitRollbackAfterDeletes(t *testing.T) {
	ctx := context.Background()
	s := openRegistrar(t, Options{ForceSideEffects: true})
	want := stateFingerprint(s)

	tx, err := s.Begin(true)
	if err != nil {
		t.Fatal(err)
	}
	// Mix inserts and deletes so the rollback exercises every save: the
	// journal (DAG), inverse ΔR (database), the Topo swap (L) and the lazy
	// matrix copy (M mutated by the flush and ∆(M,L)delete).
	stmts := []string{
		txGroup[0],
		txGroup[1],
		`delete //student[ssn="S02"]`, // GC cascade: node removed entirely
		`delete //course[cno="CS111"]/prereq/course[cno="CS112"]`,
		`insert student(ssn="S08", name="Hal") into //course[cno="CS111"]/takenBy`,
	}
	for _, stmt := range stmts {
		if _, err := tx.Stage(ctx, mustOp(t, s, stmt)); err != nil {
			t.Fatalf("stage %q: %v", stmt, err)
		}
	}
	if tx.Applied() == 0 {
		t.Fatal("nothing applied speculatively")
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := stateFingerprint(s); got != want {
		t.Fatalf("state after rollback differs from pre-Begin:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal("rollback must be idempotent")
	}
}

func TestTxnReadYourWritesAcrossStages(t *testing.T) {
	ctx := context.Background()
	s := openRegistrar(t, Options{})
	tx, err := s.Begin(true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Stage(ctx, mustOp(t, s, txGroup[0])); err != nil {
		t.Fatal(err)
	}
	// The staged insert must be visible to evaluation: the second stage
	// targets the course created by the first, and a query selects it.
	got, err := s.Query(`//course[cno="CS111"]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("staged write invisible: query = %v", got)
	}
	if _, err := tx.Stage(ctx, mustOp(t, s, txGroup[1])); err != nil {
		t.Fatalf("stage against staged state: %v", err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	got, err = s.Query(`//course[cno="CS111"]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("rolled-back write still visible")
	}
}

func TestTxnWriteGuardsWhileOpen(t *testing.T) {
	ctx := context.Background()
	s := openRegistrar(t, Options{})
	tx, err := s.Begin(true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Begin(true); !errors.Is(err, ErrTxOpen) {
		t.Fatalf("nested Begin = %v, want ErrTxOpen", err)
	}
	if _, err := s.Execute(txGroup[0]); !errors.Is(err, ErrTxOpen) {
		t.Fatalf("Execute during tx = %v, want ErrTxOpen", err)
	}
	if _, err := s.ApplyBatch(ctx, nil); !errors.Is(err, ErrTxOpen) {
		t.Fatalf("ApplyBatch during tx = %v, want ErrTxOpen", err)
	}
	// DryRun is read-only and savepoint-scoped: it may run inside the
	// transaction and answers against the staged state.
	if _, err := tx.Stage(ctx, mustOp(t, s, txGroup[0])); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DryRun(mustOp(t, s, txGroup[1])); err != nil {
		t.Fatalf("DryRun inside tx = %v", err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); !errors.Is(err, ErrTxDone) {
		t.Fatalf("double commit = %v, want ErrTxDone", err)
	}
	if _, err := tx.Stage(ctx, mustOp(t, s, txGroup[3])); !errors.Is(err, ErrTxDone) {
		t.Fatalf("stage after commit = %v, want ErrTxDone", err)
	}
}

// A staged insert's ΔV must cover only its own mutations, not everything
// the transaction journal has seen: insert X, delete X, then insert Y must
// behave exactly like the same three Apply calls (regression: Xinsert once
// read d.Changes() from the journal's start, so Y's translation re-saw X's
// edges and rejected the group).
func TestTxnStageDeltaIsPerUpdate(t *testing.T) {
	ctx := context.Background()
	s := openRegistrar(t, Options{})
	tx, err := s.Begin(true)
	if err != nil {
		t.Fatal(err)
	}
	steps := []string{
		`insert course(cno="CS901", title="A") into .`,
		`delete //course[cno="CS901"]`,
		`insert course(cno="CS902", title="B") into .`,
	}
	for _, stmt := range steps {
		if _, err := tx.Stage(ctx, mustOp(t, s, stmt)); err != nil {
			t.Fatalf("stage %q: %v", stmt, err)
		}
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	oracle := openRegistrar(t, Options{})
	for _, stmt := range steps {
		if _, err := oracle.Execute(stmt); err != nil {
			t.Fatalf("apply %q: %v", stmt, err)
		}
	}
	got := strings.SplitN(stateFingerprint(s), "\n", 2)[1] // drop gen line
	want := strings.SplitN(stateFingerprint(oracle), "\n", 2)[1]
	if got != want {
		t.Fatalf("insert/delete/insert transaction diverged from sequential applies:\n--- tx ---\n%s\n--- seq ---\n%s", got, want)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestTxnCancellationDoesNotDoom(t *testing.T) {
	s := openRegistrar(t, Options{})
	tx, err := s.Begin(true)
	if err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tx.Stage(canceled, mustOp(t, s, txGroup[0])); !errors.Is(err, context.Canceled) {
		t.Fatalf("stage = %v, want context.Canceled", err)
	}
	if tx.Err() != nil {
		t.Fatal("cancellation must not doom the transaction")
	}
	// The same update stages fine with a live context, and commits.
	ctx := context.Background()
	if _, err := tx.Stage(ctx, mustOp(t, s, txGroup[0])); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if s.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", s.Generation())
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestTxnCommitCanceledUnwinds(t *testing.T) {
	s := openRegistrar(t, Options{})
	want := stateFingerprint(s)
	tx, err := s.Begin(true)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := tx.Stage(ctx, mustOp(t, s, txGroup[0])); err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := tx.Commit(canceled); !errors.Is(err, context.Canceled) {
		t.Fatalf("commit = %v, want context.Canceled", err)
	}
	if got := stateFingerprint(s); got != want {
		t.Fatal("canceled commit did not unwind to pre-Begin state")
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
