package core

import (
	"errors"
	"strings"
	"testing"

	"rxview/internal/relational"
	"rxview/internal/update"
	"rxview/internal/workload"
	"rxview/internal/xpath"
	"rxview/internal/xtree"
)

func openRegistrar(t testing.TB, opts Options) *System {
	t.Helper()
	reg := workload.MustRegistrar()
	s, err := Open(reg.ATG, reg.DB, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOpenAndQuery(t *testing.T) {
	s := openRegistrar(t, Options{})
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	got, err := s.Query(`//course[cno="CS320"]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("CS320 query = %v", got)
	}
	if _, err := s.Query("///["); err == nil {
		t.Error("bad path accepted")
	}
	st := s.Stats()
	if st.Nodes == 0 || st.Edges == 0 || st.TreeSize <= float64(st.Nodes) {
		t.Errorf("stats = %+v", st)
	}
	if !strings.Contains(st.String(), "nodes=") {
		t.Error("Stats.String")
	}
}

func TestExample1InsertSideEffectFlow(t *testing.T) {
	// The paper's ΔX: insert CS240 into course[cno=CS650]//course[cno=CS320]
	// /prereq. The prereq node of CS320 is shared (top-level CS320 and the
	// copy below CS650): the update must be flagged, then succeed with
	// ForceSideEffects under the revised semantics.
	s := openRegistrar(t, Options{})
	stmt := `insert course(cno="CS240", title="Algorithms") into course[cno="CS650"]//course[cno="CS320"]/prereq`
	// CS240 is already a prereq of CS320, so make the example meaningful:
	// first remove that fact everywhere.
	if _, err := s.Execute(`delete //course[cno="CS320"]/prereq/course[cno="CS240"]`); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}

	_, err := s.Execute(stmt)
	var se *SideEffectError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want SideEffectError", err)
	}
	if !IsSideEffect(err) {
		t.Error("IsSideEffect")
	}

	s.opts.ForceSideEffects = true
	rep, err := s.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Applied || !rep.SideEffects {
		t.Fatalf("report = %+v", rep)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// The new prereq tuple must be in the database.
	if _, ok := s.DB.Rel("prereq").LookupKey(relational.Tuple{relational.Str("CS320"), relational.Str("CS240")}); !ok {
		t.Error("prereq(CS320, CS240) missing after insert")
	}
}

func TestExample5DeleteFlow(t *testing.T) {
	// ΔX1 = delete //course[cno=CS320]//student[sid... (our fixture keys
	// students by ssn): the enroll tuple is removed, the student survives.
	s := openRegistrar(t, Options{})
	rep, err := s.Execute(`delete //course[cno="CS320"]//student[ssn="S02"]`)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Applied || rep.EP != 1 || len(rep.DR) != 1 || rep.DR[0].Table != "enroll" {
		t.Fatalf("report = %+v", rep)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// S02 still enrolled in CS650.
	got, err := s.Query(`//student[ssn="S02"]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Error("S02 should survive (still takes CS650)")
	}

	// ΔX2 = delete //student[ssn=S02] everywhere: now the student node is
	// unreachable and garbage collected; translation deletes the student
	// row (covers both edges).
	rep, err = s.Execute(`delete //student[ssn="S02"]`)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Removed == 0 {
		t.Errorf("expected garbage-collected nodes, report = %+v", rep)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Query(`//student[ssn="S02"]`); len(got) != 0 {
		t.Error("S02 still visible")
	}
}

func TestDeleteSharedSubtreeKeepsSharedChildren(t *testing.T) {
	// Delete CS320 from CS650's prereq list only — side effect (the
	// top-level CS320 occurrence disappears too? No: removing the EDGE
	// prereq(CS650)→CS320 affects only that list; the top-level CS320
	// remains). The relational translation deletes prereq(CS650, CS320).
	s := openRegistrar(t, Options{ForceSideEffects: true})
	rep, err := s.Execute(`delete course[cno="CS650"]/prereq/course[cno="CS320"]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.DR) != 1 || rep.DR[0].Table != "prereq" {
		t.Fatalf("ΔR = %v", rep.DR)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// CS320 still exists top-level; CS240 still its prereq.
	if got, _ := s.Query(`course[cno="CS320"]/prereq/course`); len(got) != 1 {
		t.Error("CS320 lost its own prereq")
	}
}

func TestDTDValidationRejects(t *testing.T) {
	s := openRegistrar(t, Options{})
	// Inserting a student under prereq violates prereq → course*.
	_, err := s.Execute(`insert student(ssn="S09", name="Zoe") into //course[cno="CS320"]/prereq`)
	if err == nil || !strings.Contains(err.Error(), "DTD") {
		t.Errorf("err = %v, want DTD violation", err)
	}
	// Deleting a cno (sequence child) is invalid.
	_, err = s.Execute(`delete //course/cno`)
	if err == nil || !strings.Contains(err.Error(), "DTD") {
		t.Errorf("err = %v, want DTD violation", err)
	}
	// Deleting the root is invalid.
	_, err = s.Execute(`delete .`)
	if err == nil {
		t.Error("root deletion accepted")
	}
}

func TestNoMatchIsNoOp(t *testing.T) {
	s := openRegistrar(t, Options{})
	rep, err := s.Execute(`delete //course[cno="CS999"]`)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied {
		t.Error("no-op applied")
	}
	rep, err = s.Execute(`insert course(cno="CS888", title="X") into //course[cno="CS999"]/prereq`)
	if err != nil || rep.Applied {
		t.Errorf("rep=%+v err=%v", rep, err)
	}
}

func TestInsertExistingEdgeIsNoOp(t *testing.T) {
	s := openRegistrar(t, Options{ForceSideEffects: true})
	// CS240 is already a prereq of CS320 everywhere.
	rep, err := s.Execute(`insert course(cno="CS240", title="Algorithms") into //course[cno="CS320"]/prereq`)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied {
		t.Errorf("duplicate edge insert applied: %+v", rep)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestRejectedInsertLeavesStateIntact(t *testing.T) {
	s := openRegistrar(t, Options{ForceSideEffects: true})
	before := s.Stats()
	// EE100 exists with dept=EE: it cannot appear at the top level.
	_, err := s.Execute(`insert course(cno="EE100", title="Circuits") into .`)
	if !IsRejected(err) {
		t.Fatalf("err = %v, want rejection", err)
	}
	after := s.Stats()
	if before != after {
		t.Errorf("state changed by rejected update: %+v vs %+v", before, after)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateSequenceKeepsInvariant(t *testing.T) {
	// A scripted mixed sequence; after every update the full invariant
	// ΔX(T) = σ(ΔR(I)) and index integrity must hold.
	s := openRegistrar(t, Options{ForceSideEffects: true})
	// Note the order: inserting CS490 at the top level first forces
	// dept=CS; the reverse order would (correctly) be rejected, because
	// the first insert pins dept to a fresh non-CS value and the top-level
	// edge then cannot be produced.
	script := []string{
		`insert student(ssn="S03", name="Cid") into //course[cno="CS240"]/takenBy`,
		`insert course(cno="CS490", title="Compilers") into .`,
		`insert course(cno="CS490", title="Compilers") into //course[cno="CS650"]/prereq`,
		`delete //course[cno="CS320"]/prereq/course[cno="CS240"]`,
		`insert course(cno="CS100", title="Intro") into //course[cno="CS490"]/prereq`,
		`delete //student[ssn="S02"]`,
		`delete //course[cno="CS650"]`,
	}
	for i, stmt := range script {
		rep, err := s.Execute(stmt)
		if err != nil {
			t.Fatalf("step %d (%s): %v", i, stmt, err)
		}
		if !rep.Applied {
			t.Fatalf("step %d (%s) was a no-op", i, stmt)
		}
		if err := s.CheckConsistency(); err != nil {
			t.Fatalf("step %d (%s): %v", i, stmt, err)
		}
	}
}

func TestXMLSerialization(t *testing.T) {
	s := openRegistrar(t, Options{})
	xml, err := s.XML(100000)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<db>", "<course>", "<cno>CS650</cno>"} {
		if !strings.Contains(xml, want) {
			t.Errorf("XML missing %q", want)
		}
	}
	if _, err := s.XML(2); err == nil {
		t.Error("budget not enforced")
	}
}

func TestApplyStatementErrors(t *testing.T) {
	s := openRegistrar(t, Options{})
	for _, stmt := range []string{
		"",
		"frobnicate //x",
		"insert course(cno=1) into //x", // missing title
		"insert nosuch(x=1) into //x",   // unknown type
		"delete //course[",              // bad path
		"insert course(cno=\"C1\", title=\"T\") into", // missing path
	} {
		if _, err := s.Execute(stmt); err == nil {
			t.Errorf("statement %q accepted", stmt)
		}
	}
}

func TestOpParsingRoundTrip(t *testing.T) {
	s := openRegistrar(t, Options{})
	op, err := update.ParseStatement(s.ATG, `insert course(cno="CS9", title="T9") into //course[cno="CS320"]/prereq`)
	if err != nil {
		t.Fatal(err)
	}
	if op.Kind != update.OpInsert || op.Type != "course" || op.Attr[0].S != "CS9" {
		t.Errorf("op = %+v", op)
	}
	if !strings.Contains(op.String(), "insert course") {
		t.Error("op.String")
	}
	del, err := update.ParseStatement(s.ATG, "delete //course")
	if err != nil {
		t.Fatal(err)
	}
	if del.Kind != update.OpDelete || del.String() != "delete //course" {
		t.Errorf("del = %+v", del)
	}
}

func TestTypedInsertDeleteAPI(t *testing.T) {
	// The typed Insert/Delete entry points (not just Execute).
	s := openRegistrar(t, Options{ForceSideEffects: true})
	rep, err := s.Insert(`//course[cno="CS650"]/takenBy`, "student",
		relational.Tuple{relational.Str("S42"), relational.Str("Ada")})
	if err != nil || !rep.Applied {
		t.Fatalf("Insert: %+v %v", rep, err)
	}
	if rep.Timings.Total() <= 0 {
		t.Error("Timings.Total")
	}
	rep, err = s.Delete(`//student[ssn="S42"]`)
	if err != nil || !rep.Applied {
		t.Fatalf("Delete: %+v %v", rep, err)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Path errors surface from both.
	if _, err := s.Insert("[[", "student", nil); err == nil {
		t.Error("bad insert path accepted")
	}
	if _, err := s.Delete("[["); err == nil {
		t.Error("bad delete path accepted")
	}
}

func TestEvalAPI(t *testing.T) {
	s := openRegistrar(t, Options{})
	res, err := s.Eval(xpath.MustParse(`//course[cno="CS320"]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 1 {
		t.Errorf("selected = %v", res.Selected)
	}
}

func TestViewRoundTripThroughXMLParser(t *testing.T) {
	// Serialize the view, parse it back, and compare with a direct unfold:
	// the textual representation is faithful.
	s := openRegistrar(t, Options{})
	xmlStr, err := s.XML(100000)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := xtree.ParseString(xmlStr)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := s.DAG.Unfold(s.DAG.Root(), s.ATG.Text(s.DAG), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Equal(direct) {
		t.Error("parsed view differs from the direct unfold")
	}
}
