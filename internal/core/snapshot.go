package core

import (
	"io"

	"rxview/internal/dag"
	"rxview/internal/reach"
	"rxview/internal/xpath"
)

// Generation counts the write units committed to the view since Open: it
// increments exactly once per applied insertion or deletion (Apply, and
// each applied member of a non-atomic batch) and exactly once per committed
// atomic transaction, however many updates it staged — and never for
// rejected, skipped, no-op, rolled-back or dry-run updates. Two systems
// opened from the same data that committed the same write-unit sequence
// report the same generation, which is what lets a serving layer map an
// observed snapshot back to a prefix of the write history; because a
// transaction is one unit, no observable generation ever splits one.
func (s *System) Generation() uint64 { return s.gen }

// Snapshot is an immutable view of the system state at one generation: the
// DAG-compressed view and the topological order L, frozen together. It
// answers queries and renders statistics and XML without touching the live
// System, so any number of goroutines may use one Snapshot concurrently
// while the System keeps applying updates — the epoch unit of the
// snapshot-isolated serving layer.
//
// Snapshots are copy-on-write versions, not clones: System.Snapshot seals
// the live structures in time proportional to what changed since the
// previous seal (O(Δ)), sharing every untouched chunk and row with the
// live view and with neighboring snapshots. CloneSnapshot builds the same
// Snapshot by deep copy (O(n)) — the differential baseline for the COW
// machinery and the oracle in aliasing tests.
//
// The reachability matrix M is deliberately NOT captured: no snapshot read
// path consults it — the NFA evaluator needs only the DAG and L, and Stats
// needs only |M|, captured as a count. (A frozen M for consumers that do
// need one, e.g. a frontier-evaluator serving path, is one
// reach.Index.Clone away.) A Snapshot never reads the database either:
// text content lives in the sealed attribute tuples, and the base-row
// count is captured at snapshot time. Update paths (Apply, DryRun, Batch)
// are intentionally absent.
type Snapshot struct {
	gen         uint64
	dag         dag.Reader
	topo        reach.Order
	matrixPairs int
	text        func(dag.NodeID) (string, bool)
	maskLimit   int
	baseRows    int
}

// Snapshot freezes the current view state in O(Δ): it seals the DAG and L
// into immutable copy-on-write versions. It must not run concurrently with
// updates on the same System (the System itself is single-writer); the
// serving layer's apply loop calls it after each write and publishes the
// result atomically. Snapshot panics while a transaction is open — an
// epoch must never expose uncommitted staged state (the serving layer
// publishes strictly between write units, so it can never hit this).
func (s *System) Snapshot() *Snapshot {
	if s.txn != nil {
		panic("core: Snapshot inside an open transaction (commit or roll back first)")
	}
	v := s.DAG.Seal()
	return &Snapshot{
		gen:         s.gen,
		dag:         v,
		topo:        s.Index.Topo.Seal(),
		matrixPairs: s.Index.Matrix.Size(),
		text:        s.ATG.Text(v),
		maskLimit:   s.opts.MaskLimit,
		baseRows:    s.DB.TotalRows(),
	}
}

// CloneSnapshot freezes the current view state by deep copy (O(n) in the
// view size). It answers exactly like Snapshot at the same generation;
// keep using it where full physical independence is the point — as the
// aliasing-test oracle and the baseline the snapshot benchmarks compare
// the O(Δ) seal against.
func (s *System) CloneSnapshot() *Snapshot {
	if s.txn != nil {
		panic("core: CloneSnapshot inside an open transaction (commit or roll back first)")
	}
	d := s.DAG.Clone()
	return &Snapshot{
		gen:         s.gen,
		dag:         d,
		topo:        s.Index.Topo.Clone(),
		matrixPairs: s.Index.Matrix.Size(),
		text:        s.ATG.Text(d),
		maskLimit:   s.opts.MaskLimit,
		baseRows:    s.DB.TotalRows(),
	}
}

// Generation returns the write-history prefix this snapshot reflects.
func (sn *Snapshot) Generation() uint64 { return sn.gen }

// DAG exposes the frozen view structure (for node rendering in the public
// layer). Callers must treat it as read-only.
func (sn *Snapshot) DAG() dag.Reader { return sn.dag }

// Text exposes the frozen PCDATA accessor.
func (sn *Snapshot) Text() func(dag.NodeID) (string, bool) { return sn.text }

// evaluator returns a fresh XPath evaluator over the frozen state. Each
// call builds its own evaluator, so concurrent queries share no mutable
// state.
func (sn *Snapshot) evaluator() *xpath.Evaluator {
	return &xpath.Evaluator{
		D:         sn.dag,
		Topo:      sn.topo,
		Text:      sn.text,
		MaskLimit: sn.maskLimit,
	}
}

// Eval evaluates a parsed path against the frozen state.
func (sn *Snapshot) Eval(p *xpath.Path) (*xpath.Result, error) {
	return sn.evaluator().Eval(p)
}

// Query evaluates an XPath expression and returns r[[p]] at this epoch.
func (sn *Snapshot) Query(path string) ([]dag.NodeID, error) {
	p, err := ParsePath(path)
	if err != nil {
		return nil, err
	}
	res, err := sn.Eval(p)
	if err != nil {
		return nil, err
	}
	return res.Selected, nil
}

// Stats computes the frozen view's statistics.
func (sn *Snapshot) Stats() Stats {
	return statsFor(sn.dag, sn.topo.Len(), sn.matrixPairs, sn.baseRows)
}

// WriteXML serializes the frozen view; maxNodes bounds the unfolded size.
func (sn *Snapshot) WriteXML(w io.Writer, maxNodes int) error {
	tree, err := dag.Unfold(sn.dag, sn.dag.Root(), sn.text, maxNodes)
	if err != nil {
		return err
	}
	return tree.WriteXML(w)
}

// XML returns the serialized frozen view, or an error if it exceeds the
// budget.
func (sn *Snapshot) XML(maxNodes int) (string, error) {
	var b writerBuilder
	if err := sn.WriteXML(&b, maxNodes); err != nil {
		return "", err
	}
	return b.String(), nil
}
