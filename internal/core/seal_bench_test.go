package core

import (
	"fmt"
	"testing"
)

// BenchmarkSnapshotSeal measures the O(Δ) publication primitive alone (no
// writes between seals — the floor), and BenchmarkCloneSnapshot the O(n)
// deep-clone baseline. The benchrunner's snapshot experiment measures the
// same pair in the per-write regime across the full size sweep; nc=25000
// (~110k nodes) takes seconds to build, so it only runs when benching.
func BenchmarkSnapshotSeal(b *testing.B) {
	for _, nc := range []int{250, 2500, 25000} {
		_, s := openSynthetic(b, nc, 7)
		b.Run(fmt.Sprintf("nc=%d", nc), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Snapshot()
			}
		})
	}
}

func BenchmarkCloneSnapshot(b *testing.B) {
	for _, nc := range []int{250, 2500} {
		_, s := openSynthetic(b, nc, 7)
		b.Run(fmt.Sprintf("nc=%d", nc), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.CloneSnapshot()
			}
		})
	}
}
