package core

import (
	"testing"

	"rxview/internal/workload"
)

func openSynthetic(t testing.TB, nc int, seed int64) (*workload.Synthetic, *System) {
	t.Helper()
	syn, err := workload.NewSynthetic(workload.SyntheticConfig{NC: nc, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(syn.ATG, syn.DB, Options{ForceSideEffects: true})
	if err != nil {
		t.Fatal(err)
	}
	return syn, s
}

func TestSyntheticPublishAndStats(t *testing.T) {
	_, s := openSynthetic(t, 240, 1)
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Nodes == 0 || st.Edges == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The view is recursive and shares subtrees: the unfolded tree must be
	// strictly larger than the DAG (Fig.10(b)'s compression).
	if st.TreeSize <= float64(st.Nodes) {
		t.Errorf("no compression: tree %.0f vs %d nodes", st.TreeSize, st.Nodes)
	}
	if st.SharedNodes == 0 {
		t.Error("no shared subtrees generated")
	}
	if st.MatrixPairs == 0 || st.TopoLen != st.Nodes {
		t.Errorf("auxiliary structures: %+v", st)
	}
}

func TestSyntheticSharingNearTarget(t *testing.T) {
	syn, s := openSynthetic(t, 1200, 2)
	// Count shared C instances (the paper reports 31.4% for its dataset).
	shared, total := 0, 0
	for _, id := range s.DAG.NodesOfType("C") {
		total++
		if len(s.DAG.Parents(id)) > 1 {
			shared++
		}
	}
	if total == 0 {
		t.Fatal("no C nodes")
	}
	frac := float64(shared) / float64(total)
	if frac < 0.10 || frac > 0.60 {
		t.Errorf("shared C fraction = %.2f, want near the paper's 0.31 (config %f)",
			frac, syn.Config.ShareFrac)
	}
}

func TestSyntheticWorkloadsEndToEnd(t *testing.T) {
	for _, class := range []workload.Class{workload.W1, workload.W2, workload.W3} {
		class := class
		t.Run("delete-"+class.String(), func(t *testing.T) {
			syn, s := openSynthetic(t, 180, 3)
			ops := syn.DeleteWorkload(class, 3, 17)
			if len(ops) == 0 {
				t.Fatal("no ops generated")
			}
			applied := 0
			for _, op := range ops {
				rep, err := s.Execute(op.Stmt)
				if err != nil {
					t.Fatalf("%s: %v", op.Stmt, err)
				}
				if rep.Applied {
					applied++
				}
				if err := s.CheckConsistency(); err != nil {
					t.Fatalf("%s: %v", op.Stmt, err)
				}
			}
			if applied == 0 {
				t.Error("no op applied")
			}
		})
		t.Run("insert-"+class.String(), func(t *testing.T) {
			syn, s := openSynthetic(t, 180, 4)
			ops := syn.InsertWorkload(class, 3, 23)
			if len(ops) == 0 {
				t.Fatal("no ops generated")
			}
			applied := 0
			for _, op := range ops {
				rep, err := s.Execute(op.Stmt)
				if err != nil {
					t.Fatalf("%s: %v", op.Stmt, err)
				}
				if rep.Applied {
					applied++
				}
				if err := s.CheckConsistency(); err != nil {
					t.Fatalf("%s: %v", op.Stmt, err)
				}
			}
			if applied == 0 {
				t.Error("no op applied")
			}
		})
	}
}

func TestSyntheticMixedRandomSequence(t *testing.T) {
	// Interleave inserts and deletes; the invariant must hold throughout.
	syn, s := openSynthetic(t, 150, 5)
	dels := syn.DeleteWorkload(workload.W2, 4, 31)
	inss := syn.InsertWorkload(workload.W1, 4, 37)
	for i := 0; i < 4; i++ {
		for _, op := range []workload.Op{inss[i], dels[i]} {
			if _, err := s.Execute(op.Stmt); err != nil {
				t.Fatalf("%s: %v", op.Stmt, err)
			}
			if err := s.CheckConsistency(); err != nil {
				t.Fatalf("after %s: %v", op.Stmt, err)
			}
		}
	}
}
