package core

// Telemetry for the update pipeline and the transaction machinery. All
// series live on the process-wide obs.Default registry: the pipeline is
// shared state (one compiled-path cache, one §2.4 implementation) even
// when several Systems exist, and the per-phase histograms aggregate every
// update the process applies — exactly the shape the paper's Fig.11
// reports per workload. Recording uses only the atomic fast-path API;
// every time.Now pair added here is behind obs.Enabled so a stripped run
// (benchrunner -exp obs) pays one atomic load per site.

import (
	"sync"
	"time"

	"rxview/internal/obs"
)

// pipelineMetrics holds the handles the pipeline hot paths record into.
type pipelineMetrics struct {
	phase    map[string]*obs.Histogram // §2.4 phases, labeled
	queryDur *obs.Histogram

	stageDur    *obs.Histogram
	commitDur   *obs.Histogram
	rollbackDur *obs.Histogram
	commits     *obs.Counter
	rollbacks   *obs.Counter
	stagesOK    *obs.Counter
	stagesRej   *obs.Counter
}

var (
	metricsOnce sync.Once
	pm          *pipelineMetrics
)

// metrics lazily registers the pipeline families on the Default registry.
// Lazy (not init) so a process that never opens a System registers
// nothing.
func metrics() *pipelineMetrics {
	metricsOnce.Do(func() {
		r := obs.Default()
		m := &pipelineMetrics{phase: map[string]*obs.Histogram{}}
		for _, ph := range []string{"validate", "eval", "xtodv", "dvtodr", "apply", "maintain", "publish"} {
			m.phase[ph] = r.NewHistogram("xview_pipeline_phase_seconds",
				"Time per update-pipeline phase (the paper's Fig.11 split; publish is seal+epoch swap).",
				obs.LatencyBounds(), obs.Label{Key: "phase", Value: ph})
		}
		m.queryDur = r.NewHistogram("xview_query_eval_seconds",
			"XPath evaluation latency over the live view (parse through NFA/frontier eval).",
			obs.LatencyBounds())
		m.stageDur = r.NewHistogram("xview_txn_stage_seconds",
			"Latency of one staged update inside a transaction (full pipeline run).",
			obs.LatencyBounds())
		m.commitDur = r.NewHistogram("xview_txn_commit_seconds",
			"Transaction commit latency (deferred maintenance flush, durability sink, journal commit).",
			obs.LatencyBounds())
		m.rollbackDur = r.NewHistogram("xview_txn_rollback_seconds",
			"Transaction rollback latency (DAG journal unwind, inverse ΔR replay, L/M restore).",
			obs.LatencyBounds())
		m.commits = r.NewCounter("xview_txn_commits_total", "Transactions committed.")
		m.rollbacks = r.NewCounter("xview_txn_rollbacks_total", "Transactions rolled back (explicit or doomed-at-commit).")
		m.stagesOK = r.NewCounter("xview_txn_stages_total", "Staged updates that applied.")
		m.stagesRej = r.NewCounter("xview_txn_stage_rejections_total", "Staged updates that were rejected.")
		r.NewCounterFunc("xview_path_cache_hits_total",
			"Compiled-XPath cache hits (process-wide LRU).", func() float64 {
				h, _ := PathCacheStats()
				return float64(h)
			})
		r.NewCounterFunc("xview_path_cache_misses_total",
			"Compiled-XPath cache misses.", func() float64 {
				_, mi := PathCacheStats()
				return float64(mi)
			})
		pm = m
	})
	return pm
}

// observeTimings records one applied update's phase breakdown. The publish
// phase is stamped by the serving layer after the epoch swap and observed
// separately via ObservePublish.
func observeTimings(t Timings) {
	m := metrics()
	m.phase["validate"].Observe(t.Validate)
	m.phase["eval"].Observe(t.Eval)
	m.phase["xtodv"].Observe(t.XToDV)
	m.phase["dvtodr"].Observe(t.DVToDR)
	m.phase["apply"].Observe(t.Apply)
	m.phase["maintain"].Observe(t.Maintain)
}

// ObservePublish records one seal+swap duration into the pipeline phase
// histogram. Exported for the layers above core that own epoch
// publication.
func ObservePublish(d time.Duration) {
	if !obs.Enabled() {
		return
	}
	metrics().phase["publish"].Observe(d)
}

// ObserveQueryEval records one live-view query evaluation.
func observeQueryEval(d time.Duration) {
	metrics().queryDur.Observe(d)
}
