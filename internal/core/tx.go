package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"rxview/internal/dag"
	"rxview/internal/obs"
	"rxview/internal/reach"
	"rxview/internal/relational"
	"rxview/internal/storage"
	"rxview/internal/update"
)

// Transaction errors.
var (
	// ErrTxOpen is returned by write entry points while a transaction begun
	// with System.Begin is still open on the view: the transaction owns the
	// write path until Commit or Rollback closes it.
	ErrTxOpen = errors.New("core: a transaction is open on this view")
	// ErrTxDone is returned by operations on a transaction that has already
	// been committed or rolled back.
	ErrTxDone = errors.New("core: transaction already committed or rolled back")
)

// Txn is a group of XML updates processed as one unit. Updates are staged
// one at a time with Stage; each staged update runs the full pipeline of
// §2.4 speculatively against the live system — DTD validation, XPath
// evaluation with side-effect detection, ΔX→ΔV→ΔR translation, ΔR against
// the database and ΔV against the view — so queries between stages read the
// transaction's own writes. The maintenance of M is deferred transaction-
// wide (the reach.Pending of the batch path, extended to survive across
// staged ops); L is maintained eagerly because the next stage's XPath
// evaluation iterates it.
//
// In atomic mode (System.Begin(true)) the group is all-or-nothing: a staged
// rejection dooms the whole transaction, and Commit or Rollback restores
// the DAG, the database, the translator's source index, L and M exactly to
// their pre-Begin state. A successful Commit runs one deferred maintenance
// flush and advances the generation by exactly 1, however many updates the
// transaction applied.
//
// In non-atomic mode the staged prefix stays applied whatever happens later
// — the contract of the historical ApplyBatch — and the generation advances
// once per applied update, as each stage applies.
type Txn struct {
	s      *System
	atomic bool

	pending reach.Pending
	lastIns *Report // report of the last applied insertion: flush time lands here
	reports []*Report
	applied int

	// Atomic-mode rollback state. The DAG itself is covered by a journal
	// opened at Begin; these cover everything the journal cannot see.
	topoSave   *reach.Topo   // deep copy of L at Begin
	matrixSave *reach.Matrix // copy of M, taken lazily before its first mutation
	dbLog      []relational.Mutation
	noteLog    []noteRec

	// Durability state, populated only when the system has a commit sink.
	// Non-atomic mode opens its own DAG journal (journalOwned) purely to
	// capture per-stage deltas; recs buffers the records of applied stages
	// until the sink writes them at close.
	recs         []CommitRecord
	journalOwned bool

	err    error  // atomic mode: the rejection that doomed the group
	errOp  string // the staged update the rejection belongs to
	closed bool
}

// noteRec records one translator source-index adjustment for inverse replay.
type noteRec struct {
	edge     dag.Edge
	inserted bool
}

// Begin opens a transaction on the system. atomic selects all-or-nothing
// semantics (group rollback, one generation per commit); non-atomic
// transactions are the batch primitive — prefix semantics, one generation
// per applied update. Only one transaction may be open at a time; while one
// is open, Apply/ApplyBatch/Execute return ErrTxOpen.
func (s *System) Begin(atomic bool) (*Txn, error) {
	if s.txn != nil {
		return nil, ErrTxOpen
	}
	t := &Txn{s: s, atomic: atomic}
	if atomic {
		// L is mutated by every staged op (append/swap for inserts,
		// tombstoning for deletes); a deep copy now is what makes rollback
		// an O(1) pointer swap later. M is copied lazily: an insert-only
		// transaction defers all M maintenance, so its rollback never needs
		// a copy at all.
		t.topoSave = s.Index.Topo.Clone()
		s.DAG.Begin()
	} else if s.sink != nil {
		// Durable non-atomic groups persist per applied stage, and the
		// per-stage delta comes from a DAG journal the transaction opens for
		// itself. Views without a sink skip this branch entirely, so the
		// non-durable batch write path stays journal-free as it always was.
		s.DAG.Begin()
		t.journalOwned = true
	}
	s.txn = t
	return t, nil
}

// InTxn reports whether a transaction is open on the system.
func (s *System) InTxn() bool { return s.txn != nil }

// Atomic reports the transaction's mode.
func (t *Txn) Atomic() bool { return t.atomic }

// Open reports whether the transaction still accepts stages.
func (t *Txn) Open() bool { return !t.closed }

// Applied returns the number of staged updates that applied so far.
func (t *Txn) Applied() int { return t.applied }

// Reports returns the per-update reports in stage order. The slice is live:
// Commit adds the deferred flush time to the last insertion's Maintain.
func (t *Txn) Reports() []*Report { return t.reports }

// Err returns the rejection that doomed an atomic transaction, or nil — the
// updatability answer for the staged group: nil means every staged update
// applied speculatively, so Commit will succeed and the combined effect is
// exactly the staged state. ErrOp names the rejected update.
func (t *Txn) Err() error { return t.err }

// ErrOp returns the rendered update the doom error belongs to.
func (t *Txn) ErrOp() string { return t.errOp }

// Stage runs one update through the full pipeline, speculatively: on return
// with a nil error the update is applied to the live state (visible to
// queries and later stages) but not yet durable — Commit makes the group
// final, Rollback (atomic mode) undoes it. The report and error are exactly
// what Apply would produce for the same update against the same state.
//
// In atomic mode a rejection (side effect, DTD violation, parse failure,
// untranslatable ΔV) dooms the transaction: the failed update itself is
// already unwound, later stages are refused with the same error, and Commit
// will unwind the whole group. Cancellation does not doom the group — the
// canceled stage is unwound and may be retried.
func (t *Txn) Stage(ctx context.Context, op *update.Op) (*Report, error) {
	if t.closed {
		return &Report{Op: op.String()}, ErrTxDone
	}
	if t.err != nil {
		return &Report{Op: op.String()}, t.err
	}
	var stageT0 time.Time
	if obs.Enabled() {
		stageT0 = time.Now()
	}
	if op.Kind == update.OpDelete {
		// ∆(M,L)delete walks desc(r[[p]]) through M and needs a superset of
		// the true closure, so the deferred insert half must land first; in
		// atomic mode M is about to see its first mutation, so capture the
		// rollback copy now.
		t.saveMatrix()
		t.flushPending()
	}
	var mark int
	capture := t.journalOwned // non-atomic + durable: one record per stage
	if capture {
		mark = t.s.DAG.Mark()
	}
	rep, err := t.s.apply(ctx, op, t)
	t.reports = append(t.reports, rep)
	if rep.Applied {
		t.applied++
		if op.Kind == update.OpInsert {
			t.lastIns = rep
		}
		if !t.atomic {
			t.s.gen++
			if capture {
				t.recs = append(t.recs, CommitRecord{
					Gen:   t.s.gen,
					Delta: t.s.DAG.DeltaSince(mark),
					DR:    rep.DR,
				})
			}
		}
	}
	if err != nil && t.atomic && !isCtxErr(err) {
		t.err, t.errOp = err, op.String()
	}
	m := metrics()
	if rep.Applied {
		m.stagesOK.Inc()
	} else if err != nil {
		m.stagesRej.Inc()
	}
	if obs.Enabled() {
		m.stageDur.Observe(time.Since(stageT0))
	}
	return rep, err
}

// Fail dooms an atomic transaction with a rejection detected outside Stage
// — a parse failure in a higher layer, say. The group is all-or-nothing: if
// one member cannot even be compiled, the combined effect is undefined and
// Commit must refuse it. No-op in non-atomic mode, on a doomed transaction
// and on a closed one.
func (t *Txn) Fail(op string, err error) {
	if t.atomic && !t.closed && t.err == nil && err != nil {
		t.err, t.errOp = err, op
	}
}

// Commit finishes the transaction. Atomic mode: if any stage was rejected
// (or ctx is already canceled), the whole group is unwound to the pre-Begin
// state and the rejection is returned; otherwise the deferred maintenance
// flushes once, the DAG journal commits, and the generation advances by 1
// if anything applied. Non-atomic mode: the flush completes the maintenance
// of the applied prefix; nothing can fail.
func (t *Txn) Commit(ctx context.Context) error {
	if t.closed {
		return ErrTxDone
	}
	var commitT0 time.Time
	if obs.Enabled() {
		commitT0 = time.Now()
	}
	s := t.s
	var through uint64 // highest generation the sink accepted; 0 = none
	if t.atomic {
		if t.err != nil {
			err := t.err
			if rerr := t.rollback(); rerr != nil {
				return rerr
			}
			return err
		}
		if err := ctx.Err(); err != nil {
			// All-or-nothing under cancellation too: nothing committed.
			if rerr := t.rollback(); rerr != nil {
				return rerr
			}
			return err
		}
		if s.sink != nil && t.applied > 0 {
			// Durable before irreversible: flushPending mutates M, and an
			// insert-only group never took the lazy copy, so the group's
			// record must reach the sink while rollback is still clean. The
			// journal is still open here, so DeltaSince(0) is the whole
			// group's chronological op stream.
			rec := CommitRecord{Gen: s.gen + 1, Delta: s.DAG.DeltaSince(0), DR: t.dbLog}
			if err := s.commitRecords([]CommitRecord{rec}); err != nil {
				if rerr := t.rollback(); rerr != nil {
					return rerr
				}
				return err
			}
			through = rec.Gen
		}
	}
	t.flushPending()
	var durErr error
	if t.atomic {
		s.DAG.Commit()
		if t.applied > 0 {
			s.gen++
		}
	} else if s.sink != nil && len(t.recs) > 0 {
		// The records were buffered as stages applied; the whole applied
		// prefix goes durable here. A sink failure leaves the in-memory
		// state applied (the batch contract) and surfaces as the commit
		// error.
		if err := s.commitRecords(t.recs); err != nil {
			durErr = err
		} else {
			through = t.recs[len(t.recs)-1].Gen
		}
	}
	t.finish(through)
	m := metrics()
	m.commits.Inc()
	if obs.Enabled() {
		m.commitDur.Observe(time.Since(commitT0))
	}
	return durErr
}

// Rollback abandons the transaction: atomic mode restores the pre-Begin
// state exactly; non-atomic mode keeps the applied prefix and completes its
// deferred maintenance (there is nothing sound to unwind — that is the
// documented batch contract). Idempotent: rolling back a finished
// transaction is a no-op.
func (t *Txn) Rollback() error {
	if t.closed {
		return nil
	}
	if !t.atomic {
		t.flushPending()
		var durErr error
		var through uint64
		if s := t.s; s.sink != nil && len(t.recs) > 0 {
			// The applied prefix stays applied, so it must also go durable:
			// a replayed log has to reproduce exactly the state the process
			// was left in.
			if err := s.commitRecords(t.recs); err != nil {
				durErr = err
			} else {
				through = t.recs[len(t.recs)-1].Gen
			}
		}
		t.finish(through)
		return durErr
	}
	return t.rollback()
}

// rollback restores the pre-Begin state: the DAG from its journal, the
// database by inverse mutations in reverse order, the translator's source
// index by inverse note replay, L from the Begin-time copy and M from the
// lazy copy (or untouched — an insert-only transaction never mutated it).
// An inverse-mutation failure means the undo log and the database disagree;
// it is returned as an internal error, never silently swallowed.
func (t *Txn) rollback() error {
	var t0 time.Time
	if obs.Enabled() {
		t0 = time.Now()
	}
	s := t.s
	s.DAG.Rollback()
	err := undoMutations(s.store, t.dbLog)
	for i := len(t.noteLog) - 1; i >= 0; i-- {
		n := t.noteLog[i]
		if n.inserted {
			s.Translator.NoteEdgeDeleted(n.edge)
		} else {
			s.Translator.NoteEdgeInserted(n.edge)
		}
	}
	s.Index.Topo = t.topoSave
	if t.matrixSave != nil {
		s.Index.Matrix = t.matrixSave
	}
	t.pending = reach.Pending{}
	t.close()
	m := metrics()
	m.rollbacks.Inc()
	if obs.Enabled() {
		m.rollbackDur.Observe(time.Since(t0))
	}
	return err
}

func (t *Txn) close() {
	if t.journalOwned {
		// The delta-capture journal: nothing was unwound through it, so
		// committing it just detaches it and keeps the mutations.
		t.s.DAG.Commit()
	}
	t.closed = true
	t.s.txn = nil
}

// finish closes the transaction and fires the post-sync hook for the
// generations the sink accepted. The hook runs after close so that a
// checkpoint it triggers sees a quiescent system — no open transaction, no
// attached DAG journal.
func (t *Txn) finish(through uint64) {
	t.close()
	if through > 0 && t.s.afterSync != nil {
		t.s.afterSync(through)
	}
}

// saveMatrix captures the rollback copy of M before its first transaction-
// scoped mutation. No-op in non-atomic mode and on repeat calls.
func (t *Txn) saveMatrix() {
	if t.atomic && t.matrixSave == nil {
		t.matrixSave = t.s.Index.Matrix.Clone()
	}
}

// flushPending applies the deferred closure maintenance; the time lands in
// the last applied insertion's Maintain, so summing Timings.Maintain over
// the reports gives the group's true maintenance cost.
func (t *Txn) flushPending() {
	if t.pending.Len() == 0 {
		return
	}
	t0 := time.Now()
	t.s.Index.Flush(&t.pending)
	if t.lastIns != nil {
		t.lastIns.Timings.Maintain += time.Since(t0)
	}
}

// undoMutations replays the inverse of an executed ΔR log, newest first,
// through the storage backend.
func undoMutations(store storage.Backend, dr []relational.Mutation) error {
	for i := len(dr) - 1; i >= 0; i-- {
		m := dr[i]
		if m.Insert {
			if !store.Delete(m.Table, m.Tuple) {
				return fmt.Errorf("core: rollback: undo insert %s %s: no such tuple", m.Table, m.Tuple)
			}
		} else if err := store.Insert(m.Table, m.Tuple); err != nil {
			return fmt.Errorf("core: rollback: undo delete %s %s: %w", m.Table, m.Tuple, err)
		}
	}
	return nil
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// dagScope adapts one update's speculative DAG mutations to whichever
// journal context it runs in: standalone (the op opens and closes its own
// journal, as Apply always did) or inside an open transaction journal (the
// op gets a savepoint, so it can unwind alone while the journal keeps
// covering the whole group).
type dagScope struct {
	d     *dag.DAG
	mark  int
	owned bool
}

func (s *System) beginDAGScope() dagScope {
	if s.DAG.InTxn() {
		return dagScope{d: s.DAG, mark: s.DAG.Mark()}
	}
	s.DAG.Begin()
	return dagScope{d: s.DAG, owned: true}
}

// abort unwinds the op's mutations (only them).
func (sc dagScope) abort() {
	if sc.owned {
		sc.d.Rollback()
	} else {
		sc.d.RollbackTo(sc.mark)
	}
}

// changes returns the op's own mutations.
func (sc dagScope) changes() (nodeAdds []dag.NodeID, edgeAdds, edgeDels []dag.Edge) {
	if sc.owned {
		return sc.d.Changes()
	}
	return sc.d.ChangesSince(sc.mark)
}

// keep retains the op's mutations; a transaction-owned journal stays open.
func (sc dagScope) keep() {
	if sc.owned {
		sc.d.Commit()
	}
}
