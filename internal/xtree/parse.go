package xtree

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Parse reads an XML document into a Node tree using the standard decoder.
// Element content is either nested elements or text (the views this system
// publishes never mix the two); attributes are not part of the paper's data
// model and are rejected.
func Parse(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	var root *Node
	var stack []*Node
	for {
		tok, err := dec.Token()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xtree: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if len(t.Attr) > 0 {
				return nil, fmt.Errorf("xtree: element %s has attributes; the view data model has none", t.Name.Local)
			}
			n := &Node{Type: t.Name.Local}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xtree: multiple root elements")
				}
				root = n
			} else {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xtree: unbalanced end element %s", t.Name.Local)
			}
			n := stack[len(stack)-1]
			if n.Text != "" && len(n.Children) > 0 {
				return nil, fmt.Errorf("xtree: element %s mixes text and children", n.Type)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			text := strings.TrimSpace(string(t))
			if text == "" {
				continue
			}
			if len(stack) == 0 {
				return nil, fmt.Errorf("xtree: text outside the root element")
			}
			stack[len(stack)-1].Text += text
		case xml.Comment, xml.ProcInst, xml.Directive:
			// ignored
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xtree: unterminated element %s", stack[len(stack)-1].Type)
	}
	if root == nil {
		return nil, fmt.Errorf("xtree: empty document")
	}
	return root, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Node, error) {
	return Parse(strings.NewReader(s))
}
