package xtree

import (
	"strings"
	"testing"
)

func sample() *Node {
	return NewElem("db",
		NewElem("course",
			NewText("cno", "CS650"),
			NewText("title", "Advanced Topics"),
			NewElem("prereq",
				NewElem("course",
					NewText("cno", "CS320"),
					NewText("title", "Databases"),
				),
			),
		),
	)
}

func TestSizeAndDepth(t *testing.T) {
	n := sample()
	if got := n.Size(); got != 8 {
		t.Errorf("Size = %d", got)
	}
	if got := n.Depth(); got != 5 {
		t.Errorf("Depth = %d", got)
	}
	var nilNode *Node
	if nilNode.Size() != 0 || nilNode.Depth() != 0 {
		t.Error("nil node size/depth")
	}
}

func TestEqual(t *testing.T) {
	a, b := sample(), sample()
	if !a.Equal(b) {
		t.Error("identical trees not equal")
	}
	b.Children[0].Children[0].Text = "CS999"
	if a.Equal(b) {
		t.Error("different trees equal")
	}
	if a.Equal(nil) {
		t.Error("tree equal to nil")
	}
	var n1, n2 *Node
	if !n1.Equal(n2) {
		t.Error("nil trees should be equal")
	}
	c := sample()
	c.Children[0].Children = c.Children[0].Children[:2]
	if a.Equal(c) {
		t.Error("trees with different child counts equal")
	}
}

func TestFindAndWalk(t *testing.T) {
	n := sample()
	got := n.Find(func(m *Node) bool { return m.Type == "cno" && m.Text == "CS320" })
	if got == nil {
		t.Fatal("Find missed CS320")
	}
	if n.Find(func(m *Node) bool { return m.Type == "zzz" }) != nil {
		t.Error("Find invented a node")
	}
	count := 0
	n.Walk(func(m *Node) bool { count++; return true })
	if count != 8 {
		t.Errorf("Walk visited %d", count)
	}
	count = 0
	n.Walk(func(m *Node) bool { count++; return count < 3 })
	if count != 3 {
		t.Errorf("early-stop Walk visited %d", count)
	}
}

func TestStringValue(t *testing.T) {
	n := sample()
	sv := n.Children[0].Children[0].StringValue()
	if sv != "CS650" {
		t.Errorf("StringValue(cno) = %q", sv)
	}
	if got := n.StringValue(); got != "CS650Advanced TopicsCS320Databases" {
		t.Errorf("StringValue(db) = %q", got)
	}
}

func TestXMLSerialization(t *testing.T) {
	n := sample()
	xmlStr := n.XML()
	for _, want := range []string{
		"<db>", "</db>", "<cno>CS650</cno>", "<prereq>", "  <course>",
	} {
		if !strings.Contains(xmlStr, want) {
			t.Errorf("XML missing %q:\n%s", want, xmlStr)
		}
	}
	// Escaping.
	e := NewText("t", `a<b&"c"`)
	if out := e.XML(); !strings.Contains(out, "a&lt;b&amp;") {
		t.Errorf("XML not escaped: %s", out)
	}
	// Empty leaf renders self-closing.
	empty := NewElem("gap")
	if out := empty.XML(); !strings.Contains(out, "<gap/>") {
		t.Errorf("empty element = %s", out)
	}
}

func TestParseRoundTrip(t *testing.T) {
	orig := sample()
	parsed, err := ParseString(orig.XML())
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(parsed) {
		t.Errorf("round trip changed tree:\n%s\nvs\n%s", orig.XML(), parsed.XML())
	}
}

func TestParseEscapedText(t *testing.T) {
	n, err := ParseString("<t>a&lt;b&amp;c</t>")
	if err != nil {
		t.Fatal(err)
	}
	if n.Text != "a<b&c" {
		t.Errorf("text = %q", n.Text)
	}
}

func TestParseSelfClosing(t *testing.T) {
	n, err := ParseString("<a><b/><c></c></a>")
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Children) != 2 || n.Children[0].Type != "b" {
		t.Errorf("tree = %s", n.XML())
	}
}

func TestParseIgnoresCommentsAndPIs(t *testing.T) {
	n, err := ParseString(`<?xml version="1.0"?><!-- hi --><a><b>x</b></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if n.Type != "a" || n.Children[0].Text != "x" {
		t.Errorf("tree = %s", n.XML())
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"",                // empty
		"<a>",             // unterminated
		"<a></b>",         // mismatched
		`<a x="1"/>`,      // attributes
		"<a/><b/>",        // multiple roots
		"<a>text<b/></a>", // mixed content
		"text",            // text outside root
	} {
		if _, err := ParseString(in); err == nil {
			t.Errorf("ParseString(%q) accepted", in)
		}
	}
}

func TestParseRegistrarView(t *testing.T) {
	// A published view fragment parses back to an equal tree.
	doc := `
<db>
  <course>
    <cno>CS650</cno>
    <title>Advanced Topics</title>
    <prereq>
      <course>
        <cno>CS320</cno>
        <title>Databases</title>
        <prereq/>
        <takenBy/>
      </course>
    </prereq>
    <takenBy/>
  </course>
</db>`
	n, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if n.Size() != 11 {
		t.Errorf("size = %d", n.Size())
	}
	reparsed, err := ParseString(n.XML())
	if err != nil {
		t.Fatal(err)
	}
	if !n.Equal(reparsed) {
		t.Error("serialize/parse not stable")
	}
}
