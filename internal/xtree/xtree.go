// Package xtree models materialized XML trees: the uncompressed view T =
// σ(I) of the paper. The system keeps views as DAGs (package dag); trees are
// produced on demand for serialization, for examples, and as the oracle in
// tests (tree semantics define correctness of the DAG algorithms).
package xtree

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Node is one element of an XML tree.
type Node struct {
	Type     string
	Text     string // PCDATA content; meaningful only for text elements
	Children []*Node
}

// NewElem builds an element node with children.
func NewElem(typ string, children ...*Node) *Node {
	return &Node{Type: typ, Children: children}
}

// NewText builds a PCDATA element <typ>text</typ>.
func NewText(typ, text string) *Node {
	return &Node{Type: typ, Text: text}
}

// Size returns the number of element nodes in the subtree (including n).
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// Depth returns the height of the subtree (a leaf has depth 1).
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	d := 0
	for _, c := range n.Children {
		if cd := c.Depth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

// Equal reports deep structural equality (type, text, ordered children).
func (n *Node) Equal(m *Node) bool {
	if n == nil || m == nil {
		return n == m
	}
	if n.Type != m.Type || n.Text != m.Text || len(n.Children) != len(m.Children) {
		return false
	}
	for i := range n.Children {
		if !n.Children[i].Equal(m.Children[i]) {
			return false
		}
	}
	return true
}

// Find returns the first node in document order satisfying pred, or nil.
func (n *Node) Find(pred func(*Node) bool) *Node {
	if n == nil {
		return nil
	}
	if pred(n) {
		return n
	}
	for _, c := range n.Children {
		if got := c.Find(pred); got != nil {
			return got
		}
	}
	return nil
}

// Walk visits every node in document order; it stops if fn returns false.
func (n *Node) Walk(fn func(*Node) bool) bool {
	if n == nil {
		return true
	}
	if !fn(n) {
		return false
	}
	for _, c := range n.Children {
		if !c.Walk(fn) {
			return false
		}
	}
	return true
}

// StringValue returns the concatenated PCDATA content of the subtree, the
// XPath string-value used by value filters p = "s".
func (n *Node) StringValue() string {
	var b strings.Builder
	n.Walk(func(m *Node) bool {
		b.WriteString(m.Text)
		return true
	})
	return b.String()
}

// WriteXML serializes the subtree as indented XML.
func (n *Node) WriteXML(w io.Writer) error {
	return n.write(w, 0)
}

func (n *Node) write(w io.Writer, depth int) error {
	indent := strings.Repeat("  ", depth)
	if len(n.Children) == 0 {
		var esc bytes.Buffer
		if err := xml.EscapeText(&esc, []byte(n.Text)); err != nil {
			return err
		}
		if n.Text == "" {
			_, err := fmt.Fprintf(w, "%s<%s/>\n", indent, n.Type)
			return err
		}
		_, err := fmt.Fprintf(w, "%s<%s>%s</%s>\n", indent, n.Type, esc.String(), n.Type)
		return err
	}
	if _, err := fmt.Fprintf(w, "%s<%s>\n", indent, n.Type); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := c.write(w, depth+1); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s</%s>\n", indent, n.Type)
	return err
}

// XML returns the serialized subtree as a string.
func (n *Node) XML() string {
	var b strings.Builder
	if err := n.WriteXML(&b); err != nil {
		return fmt.Sprintf("<!-- serialize error: %v -->", err)
	}
	return b.String()
}
