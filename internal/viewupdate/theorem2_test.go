package viewupdate

// Theorem 2 of the paper: the SPJ view updatability problem for insertions
// is NP-complete, by reduction from non-tautology. This test realizes the
// reduction inside the ATG framework and checks, against an exact oracle,
// that the insertion is translatable iff the formula is NOT a tautology.
//
// Encoding (the spirit of the paper's R/Rφ/RE gadget, adapted to edge
// views):
//
//   - R(A, B, g) holds a truth assignment: inserting asg(i) view elements
//     forces template rows R(i, b_i, 1) with b_i ∈ {0,1} free;
//   - CL holds the clauses of the DNF φ = ⋁ Cj, Cj = l1 ∧ l2 ∧ l3;
//   - the hit rule joins three R rows against a clause: a hit element
//     appears under the (pre-existing) trig node iff some clause is
//     satisfied by the assignment — an unrequested view change.
//
// Hence a side-effect-free ΔR exists iff some assignment falsifies every
// clause iff φ is not a tautology.

import (
	"errors"
	"math/rand"
	"testing"

	"rxview/internal/atg"
	"rxview/internal/dag"
	"rxview/internal/dtd"
	"rxview/internal/relational"
	"rxview/internal/sat"
)

type dnfClause struct {
	vars  [3]int64 // variable ids 1..k
	signs [3]int64 // 1 = positive literal, 0 = negated
}

func theorem2Fixture(t *testing.T, k int, clauses []dnfClause) (*atg.Compiled, *relational.Database, *dag.DAG, *Translator) {
	t.Helper()
	intK := relational.KindInt
	bit := []relational.Value{relational.Int(0), relational.Int(1)}
	schema := relational.MustSchema(
		relational.MustTableSchema("R", []relational.Column{
			{Name: "A", Type: intK},
			{Name: "B", Type: intK, Domain: bit},
			{Name: "g", Type: intK},
		}, "A"),
		relational.MustTableSchema("E", []relational.Column{
			{Name: "k", Type: intK},
			{Name: "g", Type: intK},
		}, "k"),
		relational.MustTableSchema("CL", []relational.Column{
			{Name: "j", Type: intK},
			{Name: "v1", Type: intK}, {Name: "v2", Type: intK}, {Name: "v3", Type: intK},
			{Name: "s1", Type: intK}, {Name: "s2", Type: intK}, {Name: "s3", Type: intK},
		}, "j"),
		relational.MustTableSchema("G", []relational.Column{
			{Name: "k", Type: intK},
		}, "k"),
	)
	d, err := dtd.Parse(`
<!ELEMENT db (grp*)>
<!ELEMENT grp (asgs, trigs)>
<!ELEMENT asgs (asg*)>
<!ELEMENT trigs (trig*)>
<!ELEMENT trig (hit*)>
<!ELEMENT asg (#PCDATA)>
<!ELEMENT hit (#PCDATA)>
`)
	if err != nil {
		t.Fatal(err)
	}
	qGrp := &relational.SPJ{
		Name:    "Qdb_grp",
		From:    []relational.TableRef{{Table: "G"}},
		Selects: []relational.SelectItem{{As: "k", Src: relational.Col(0, 0)}},
	}
	qAsg := &relational.SPJ{
		Name:    "Qasgs_asg",
		NParams: 1,
		From:    []relational.TableRef{{Table: "R"}},
		Where: []relational.EqPred{
			{Left: relational.Col(0, 2), Right: relational.Param(0)}, // r.g = $asgs
		},
		Selects: []relational.SelectItem{{As: "A", Src: relational.Col(0, 0)}},
	}
	qTrig := &relational.SPJ{
		Name:    "Qtrigs_trig",
		NParams: 1,
		From:    []relational.TableRef{{Table: "E"}},
		Where: []relational.EqPred{
			{Left: relational.Col(0, 1), Right: relational.Param(0)},
		},
		Selects: []relational.SelectItem{{As: "k", Src: relational.Col(0, 0)}},
	}
	qHit := &relational.SPJ{
		Name:    "Qtrig_hit",
		NParams: 1,
		From: []relational.TableRef{
			{Table: "E"}, {Table: "CL"},
			{Table: "R", Alias: "r1"}, {Table: "R", Alias: "r2"}, {Table: "R", Alias: "r3"},
		},
		Where: []relational.EqPred{
			{Left: relational.Col(0, 0), Right: relational.Param(0)},  // e.k = $trig
			{Left: relational.Col(2, 0), Right: relational.Col(1, 1)}, // r1.A = c.v1
			{Left: relational.Col(3, 0), Right: relational.Col(1, 2)}, // r2.A = c.v2
			{Left: relational.Col(4, 0), Right: relational.Col(1, 3)}, // r3.A = c.v3
			{Left: relational.Col(2, 1), Right: relational.Col(1, 4)}, // r1.B = c.s1
			{Left: relational.Col(3, 1), Right: relational.Col(1, 5)}, // r2.B = c.s2
			{Left: relational.Col(4, 1), Right: relational.Col(1, 6)}, // r3.B = c.s3
		},
		Selects: []relational.SelectItem{
			{As: "j", Src: relational.Col(1, 0)},
			{As: "v1", Src: relational.Col(1, 1)},
			{As: "v2", Src: relational.Col(1, 2)},
			{As: "v3", Src: relational.Col(1, 3)},
		},
	}
	compiled, err := atg.NewBuilder(d, schema).
		Attr("grp", atg.Field("k", intK)).
		Attr("asgs", atg.Field("k", intK)).
		Attr("trigs", atg.Field("k", intK)).
		Attr("trig", atg.Field("k", intK)).
		Attr("asg", atg.Field("A", intK)).
		Attr("hit", atg.Field("j", intK), atg.Field("v1", intK), atg.Field("v2", intK), atg.Field("v3", intK)).
		QueryRule("db", "grp", qGrp).
		ProjRule("grp", "asgs", atg.FromParent(0)).
		ProjRule("grp", "trigs", atg.FromParent(0)).
		QueryRule("asgs", "asg", qAsg).
		QueryRule("trigs", "trig", qTrig).
		QueryRule("trig", "hit", qHit).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	db := relational.NewDatabase(schema)
	db.Rel("G").MustInsert(relational.Int(1))
	db.Rel("E").MustInsert(relational.Int(1), relational.Int(1))
	for j, c := range clauses {
		db.Rel("CL").MustInsert(
			relational.Int(int64(j+1)),
			relational.Int(c.vars[0]), relational.Int(c.vars[1]), relational.Int(c.vars[2]),
			relational.Int(c.signs[0]), relational.Int(c.signs[1]), relational.Int(c.signs[2]),
		)
	}
	dg, err := compiled.PublishDAG(db)
	if err != nil {
		t.Fatal(err)
	}
	return compiled, db, dg, NewTranslator(compiled, db, dg)
}

// updatableInsertion runs the reduction's ΔV (insert asg(1..k)) and reports
// whether a side-effect-free ΔR exists.
func updatableInsertion(t *testing.T, k int, clauses []dnfClause) bool {
	t.Helper()
	compiled, db, dg, tr := theorem2Fixture(t, k, clauses)
	asgs, ok := dg.Lookup("asgs", relational.Tuple{relational.Int(1)})
	if !ok {
		t.Fatal("asgs node missing")
	}
	dg.Begin()
	defer dg.Rollback()
	for i := 1; i <= k; i++ {
		n, _ := dg.AddNode("asg", relational.Tuple{relational.Int(int64(i))})
		dg.AddEdge(asgs, n)
	}
	newNodes, edgeAdds, _ := dg.Changes()
	dr, induced, err := tr.TranslateInsert(edgeAdds, newNodes)
	if err != nil {
		var rej *RejectedError
		if !errors.As(err, &rej) {
			t.Fatalf("unexpected error kind: %v", err)
		}
		return false
	}
	if len(induced) != 0 {
		t.Fatalf("induced = %v (hit nodes must not be induced: trig(1) is old)", induced)
	}
	// Verify the model: apply and republish.
	clone := db.Clone()
	if err := clone.Apply(dr); err != nil {
		t.Fatal(err)
	}
	fresh, err := compiled.PublishDAG(clone)
	if err != nil {
		t.Fatal(err)
	}
	if err := dagsEquivalent(dg, fresh); err != nil {
		t.Fatalf("accepted ΔR is inconsistent: %v", err)
	}
	return true
}

// tautology checks the DNF with the exact DPLL-based oracle.
func isTautology(k int, clauses []dnfClause) bool {
	cubes := make([][]sat.Lit, len(clauses))
	for j, c := range clauses {
		for i := 0; i < 3; i++ {
			v := int(c.vars[i] - 1)
			if c.signs[i] == 1 {
				cubes[j] = append(cubes[j], sat.Pos(v))
			} else {
				cubes[j] = append(cubes[j], sat.Neg(v))
			}
		}
	}
	return sat.Tautology(k, cubes)
}

func TestTheorem2CraftedInstances(t *testing.T) {
	cases := []struct {
		name    string
		k       int
		clauses []dnfClause
		taut    bool
	}{
		{
			name: "x or not-x (tautology)",
			k:    1,
			clauses: []dnfClause{
				{vars: [3]int64{1, 1, 1}, signs: [3]int64{1, 1, 1}},
				{vars: [3]int64{1, 1, 1}, signs: [3]int64{0, 0, 0}},
			},
			taut: true,
		},
		{
			name: "x or y (not a tautology)",
			k:    2,
			clauses: []dnfClause{
				{vars: [3]int64{1, 1, 1}, signs: [3]int64{1, 1, 1}},
				{vars: [3]int64{2, 2, 2}, signs: [3]int64{1, 1, 1}},
			},
			taut: false,
		},
		{
			name: "(x and y) or not-x or (x and not-y) (tautology)",
			k:    2,
			clauses: []dnfClause{
				{vars: [3]int64{1, 2, 2}, signs: [3]int64{1, 1, 1}},
				{vars: [3]int64{1, 1, 1}, signs: [3]int64{0, 0, 0}},
				{vars: [3]int64{1, 2, 2}, signs: [3]int64{1, 0, 0}},
			},
			taut: true,
		},
		{
			name: "single clause (never a tautology)",
			k:    3,
			clauses: []dnfClause{
				{vars: [3]int64{1, 2, 3}, signs: [3]int64{1, 0, 1}},
			},
			taut: false,
		},
	}
	for _, c := range cases {
		if got := isTautology(c.k, c.clauses); got != c.taut {
			t.Fatalf("%s: oracle says taut=%v, expected %v (test bug)", c.name, got, c.taut)
		}
		updatable := updatableInsertion(t, c.k, c.clauses)
		if updatable != !c.taut {
			t.Errorf("%s: updatable=%v, want %v (Theorem 2: updatable iff not tautology)",
				c.name, updatable, !c.taut)
		}
	}
}

func TestTheorem2RandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		k := 2 + rng.Intn(3)
		n := 1 + rng.Intn(5)
		clauses := make([]dnfClause, n)
		for j := range clauses {
			for i := 0; i < 3; i++ {
				clauses[j].vars[i] = int64(1 + rng.Intn(k))
				clauses[j].signs[i] = int64(rng.Intn(2))
			}
		}
		want := !isTautology(k, clauses)
		got := updatableInsertion(t, k, clauses)
		if got != want {
			t.Fatalf("trial %d: updatable=%v, want %v (clauses %v)", trial, got, want, clauses)
		}
	}
}
