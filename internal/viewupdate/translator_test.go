package viewupdate

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"rxview/internal/atg"
	"rxview/internal/dag"
	"rxview/internal/dtd"
	"rxview/internal/relational"
	"rxview/internal/workload"
)

// fixture publishes the registrar view and builds a translator.
func fixture(t testing.TB) (*workload.Registrar, *dag.DAG, *Translator) {
	t.Helper()
	reg := workload.MustRegistrar()
	d, err := reg.ATG.PublishDAG(reg.DB)
	if err != nil {
		t.Fatal(err)
	}
	return reg, d, NewTranslator(reg.ATG, reg.DB, d)
}

func node(t testing.TB, d *dag.DAG, typ string, vals ...string) dag.NodeID {
	t.Helper()
	attr := make(relational.Tuple, len(vals))
	for i, v := range vals {
		attr[i] = relational.Str(v)
	}
	id, ok := d.Lookup(typ, attr)
	if !ok {
		t.Fatalf("node %s%v not found", typ, vals)
	}
	return id
}

// dagsEquivalent compares two DAGs by (type, attr) node identity and edges.
func dagsEquivalent(a, b *dag.DAG) error {
	keyOf := func(d *dag.DAG, id dag.NodeID) string {
		return d.Type(id) + "\x00" + d.Attr(id).Encode()
	}
	aNodes := map[string]dag.NodeID{}
	for _, id := range a.Nodes() {
		aNodes[keyOf(a, id)] = id
	}
	bNodes := map[string]dag.NodeID{}
	for _, id := range b.Nodes() {
		bNodes[keyOf(b, id)] = id
	}
	for k := range aNodes {
		if _, ok := bNodes[k]; !ok {
			return fmt.Errorf("node %q only in first DAG", k)
		}
	}
	for k := range bNodes {
		if _, ok := aNodes[k]; !ok {
			return fmt.Errorf("node %q only in second DAG", k)
		}
	}
	edgeSet := func(d *dag.DAG) map[string]bool {
		out := map[string]bool{}
		for _, u := range d.Nodes() {
			for _, v := range d.Children(u) {
				out[keyOf(d, u)+"→"+keyOf(d, v)] = true
			}
		}
		return out
	}
	ae, be := edgeSet(a), edgeSet(b)
	for e := range ae {
		if !be[e] {
			return fmt.Errorf("edge %q only in first DAG", e)
		}
	}
	for e := range be {
		if !ae[e] {
			return fmt.Errorf("edge %q only in second DAG", e)
		}
	}
	return nil
}

// applyAndCheck applies ΔR to a clone of the database, republishes, and
// compares with the (post-ΔV) DAG: the paper's correctness criterion
// ΔX(T) = σ(ΔR(I)).
func applyAndCheck(t *testing.T, reg *workload.Registrar, d *dag.DAG, dr []relational.Mutation) {
	t.Helper()
	clone := reg.DB.Clone()
	if err := clone.Apply(dr); err != nil {
		t.Fatalf("apply ΔR: %v", err)
	}
	fresh, err := reg.ATG.PublishDAG(clone)
	if err != nil {
		t.Fatalf("republish: %v", err)
	}
	// Drop unreachable leftovers in the incremental DAG before comparing.
	d.GarbageCollect()
	if err := dagsEquivalent(d, fresh); err != nil {
		t.Fatalf("ΔX(T) != σ(ΔR(I)): %v", err)
	}
}

func TestTranslateDeleteSingleEdge(t *testing.T) {
	reg, d, tr := fixture(t)
	// Delete student S02 from takenBy(CS320): Example 5's ΔV1.
	tb := node(t, d, "takenBy", "CS320")
	s02 := node(t, d, "student", "S02", "Bob")
	dv := []dag.Edge{{Parent: tb, Child: s02}}
	dr, err := tr.TranslateDelete(dv)
	if err != nil {
		t.Fatal(err)
	}
	// The only side-effect-free source is the enroll(S02, CS320) tuple:
	// deleting student S02 itself would also remove the takenBy(CS650) edge.
	if len(dr) != 1 || dr[0].Table != "enroll" {
		t.Fatalf("ΔR = %v", dr)
	}
	if dr[0].Tuple[0].S != "S02" || dr[0].Tuple[1].S != "CS320" {
		t.Fatalf("ΔR tuple = %v", dr[0].Tuple)
	}
	// Full consistency.
	d.RemoveEdge(tb, s02)
	tr.NoteEdgeDeleted(dag.Edge{Parent: tb, Child: s02})
	applyAndCheck(t, reg, d, dr)
}

func TestTranslateDeleteGroupPrefersCoveringSource(t *testing.T) {
	_, d, tr := fixture(t)
	// Delete S02 from both takenBy nodes: ΔV2 of Example 5. Deleting the
	// student tuple covers both edges with one base deletion.
	tb650 := node(t, d, "takenBy", "CS650")
	tb320 := node(t, d, "takenBy", "CS320")
	s02 := node(t, d, "student", "S02", "Bob")
	dv := []dag.Edge{{Parent: tb650, Child: s02}, {Parent: tb320, Child: s02}}
	dr, err := tr.TranslateDelete(dv)
	if err != nil {
		t.Fatal(err)
	}
	if len(dr) != 1 || dr[0].Table != "student" {
		t.Fatalf("ΔR = %v, want single student deletion", dr)
	}
}

func TestTranslateDeleteRejectsSideEffects(t *testing.T) {
	_, d, tr := fixture(t)
	// Deleting only the top-level CS320 edge is impossible: the course
	// tuple also derives the prereq(CS650)→CS320 edge.
	db := d.Root()
	c320 := node(t, d, "course", "CS320", "Databases")
	_, err := tr.TranslateDelete([]dag.Edge{{Parent: db, Child: c320}})
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v, want RejectedError", err)
	}
	if !tr.Updatable([]dag.Edge{{Parent: node(t, d, "takenBy", "CS320"), Child: node(t, d, "student", "S02", "Bob")}}) {
		t.Error("single enroll-backed deletion should be updatable")
	}
	if tr.Updatable([]dag.Edge{{Parent: db, Child: c320}}) {
		t.Error("side-effecting deletion should not be updatable")
	}
}

func TestTranslateDeleteBothOccurrences(t *testing.T) {
	reg, d, tr := fixture(t)
	// Deleting CS320 from BOTH the top level and prereq(CS650) is fine:
	// the course tuple now only derives deleted edges.
	db := d.Root()
	c320 := node(t, d, "course", "CS320", "Databases")
	pre650 := node(t, d, "prereq", "CS650")
	dv := []dag.Edge{{Parent: db, Child: c320}, {Parent: pre650, Child: c320}}
	dr, err := tr.TranslateDelete(dv)
	if err != nil {
		t.Fatal(err)
	}
	// One deletion (course row) covers both edges.
	if len(dr) != 1 || dr[0].Table != "course" {
		t.Fatalf("ΔR = %v", dr)
	}
	for _, e := range dv {
		d.RemoveEdge(e.Parent, e.Child)
		tr.NoteEdgeDeleted(e)
	}
	applyAndCheck(t, reg, d, dr)
}

func TestTranslateDeleteSequenceEdgeRejected(t *testing.T) {
	_, d, tr := fixture(t)
	c320 := node(t, d, "course", "CS320", "Databases")
	cno := node(t, d, "cno", "CS320")
	_, err := tr.TranslateDelete([]dag.Edge{{Parent: c320, Child: cno}})
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("deleting a sequence-child edge must be rejected: %v", err)
	}
}

func TestMinimalDeleteExactVsGreedy(t *testing.T) {
	_, d, tr := fixture(t)
	tb650 := node(t, d, "takenBy", "CS650")
	tb320 := node(t, d, "takenBy", "CS320")
	s02 := node(t, d, "student", "S02", "Bob")
	dv := []dag.Edge{{Parent: tb650, Child: s02}, {Parent: tb320, Child: s02}}
	m, err := NewMinimalDelete(tr, dv)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := m.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := m.Exact()
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) > len(greedy) {
		t.Errorf("exact %d > greedy %d", len(exact), len(greedy))
	}
	if len(exact) != 1 {
		t.Errorf("optimal ΔR size = %d, want 1 (delete the student)", len(exact))
	}
}

// TestMinimalDeleteSetCoverGadget builds the Theorem 3 set-cover structure:
// view tuples joining A and B rows, where choosing deletions is a covering
// problem. Exact must beat or match greedy and find the optimum.
func TestMinimalDeleteSetCoverGadget(t *testing.T) {
	intK := relational.KindInt
	schema := relational.MustSchema(
		relational.MustTableSchema("A", []relational.Column{
			{Name: "ka", Type: intK}, {Name: "x", Type: intK}}, "ka"),
		relational.MustTableSchema("B", []relational.Column{
			{Name: "kb", Type: intK}, {Name: "x", Type: intK}}, "kb"),
	)
	d, err := dtd.Parse(`
<!ELEMENT db (pair*)>
<!ELEMENT pair (#PCDATA)>
`)
	if err != nil {
		t.Fatal(err)
	}
	q := &relational.SPJ{
		Name: "Qdb_pair",
		From: []relational.TableRef{{Table: "A"}, {Table: "B"}},
		Where: []relational.EqPred{
			{Left: relational.Col(0, 1), Right: relational.Col(1, 1)},
		},
		Selects: []relational.SelectItem{
			{As: "ka", Src: relational.Col(0, 0)},
			{As: "kb", Src: relational.Col(1, 0)},
		},
	}
	compiled, err2 := atg.NewBuilder(d, schema).
		Attr("pair", atg.Field("ka", intK), atg.Field("kb", intK)).
		QueryRule("db", "pair", q).
		Build()
	err = err2
	if err != nil {
		t.Fatal(err)
	}
	db := relational.NewDatabase(schema)
	// A1 joins B1,B2,B3 (x=1); A2 joins B4 (x=2).
	db.Rel("A").MustInsert(relational.Int(1), relational.Int(1))
	db.Rel("A").MustInsert(relational.Int(2), relational.Int(2))
	for i, x := range []int64{1, 1, 1, 2} {
		db.Rel("B").MustInsert(relational.Int(int64(i+1)), relational.Int(x))
	}
	dg, err := compiled.PublishDAG(db)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTranslator(compiled, db, dg)
	// Delete all 4 pairs: optimum is {A1, A2} (2 deletions), not 4 B rows.
	var dv []dag.Edge
	for _, id := range dg.NodesOfType("pair") {
		dv = append(dv, dag.Edge{Parent: dg.Root(), Child: id})
	}
	if len(dv) != 4 {
		t.Fatalf("pairs = %d", len(dv))
	}
	m, err := NewMinimalDelete(tr, dv)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := m.Exact()
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != 2 {
		t.Errorf("exact cover size = %d, want 2: %v", len(exact), exact)
	}
	greedy, err := m.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	if len(greedy) < len(exact) {
		t.Error("greedy smaller than exact (impossible)")
	}
}

func TestRejectedErrorMessage(t *testing.T) {
	err := &RejectedError{Reason: "because"}
	if !strings.Contains(err.Error(), "because") {
		t.Error("message lost")
	}
}
