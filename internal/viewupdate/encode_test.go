package viewupdate

// White-box tests of the SAT encoding (§4.3): variable domains, atom
// literals (including var=var equality over shared domains and fresh
// slots), required/forbidden conjunctions and guarded match disjunctions.
//
// Note: under key preservation an edge has a unique derivation, which makes
// the guarded-with-feasible-match case unreachable through the public
// pipeline (the match would have to coincide with the edge's own
// determined template). The encoder still implements it defensively; these
// tests exercise it directly.

import (
	"testing"

	"rxview/internal/dag"
	"rxview/internal/relational"
	"rxview/internal/sat"
)

func bitDomain() []relational.Value {
	return []relational.Value{relational.Int(0), relational.Int(1)}
}

func newState(t *testing.T) *insertState {
	t.Helper()
	return &insertState{
		templates: map[string]*template{},
		byTable:   map[string][]*template{},
		newNodes:  map[dag.NodeID]bool{},
	}
}

func (st *insertState) addVar(name string, dom []relational.Value, kind relational.Kind) relational.Value {
	st.vars = append(st.vars, varInfo{name: name, typ: kind, domain: dom})
	return relational.Var(len(st.vars) - 1)
}

func solveState(t *testing.T, st *insertState) ([]bool, bool) {
	t.Helper()
	e := newEncoder(st)
	f := e.encode()
	m, ok := sat.DPLL(f)
	if ok && !f.Satisfied(m) {
		t.Fatal("DPLL returned a non-model")
	}
	return m, ok
}

func TestEncodeRequiredForcesValue(t *testing.T) {
	st := newState(t)
	x := st.addVar("x", bitDomain(), relational.KindInt)
	st.required = append(st.required, []symAtom{{L: x, R: relational.Int(1)}})
	e := newEncoder(st)
	f := e.encode()
	m, ok := sat.DPLL(f)
	if !ok {
		t.Fatal("should be SAT")
	}
	// x's selector for value 1 must be true.
	if !e.sel[0][1].Satisfied(m) {
		t.Error("required atom did not force x=1")
	}
}

func TestEncodeForbiddenConjunction(t *testing.T) {
	st := newState(t)
	x := st.addVar("x", bitDomain(), relational.KindInt)
	y := st.addVar("y", bitDomain(), relational.KindInt)
	// Forbid (x=1 ∧ y=1); require x=1 — so y must be 0.
	st.required = append(st.required, []symAtom{{L: x, R: relational.Int(1)}})
	st.forbidden = append(st.forbidden, []symAtom{
		{L: x, R: relational.Int(1)},
		{L: y, R: relational.Int(1)},
	})
	e := newEncoder(st)
	f := e.encode()
	m, ok := sat.DPLL(f)
	if !ok {
		t.Fatal("should be SAT")
	}
	if !e.sel[1][0].Satisfied(m) {
		t.Error("y should be forced to 0")
	}
}

func TestEncodeUnsatisfiableRequirements(t *testing.T) {
	st := newState(t)
	x := st.addVar("x", bitDomain(), relational.KindInt)
	st.required = append(st.required,
		[]symAtom{{L: x, R: relational.Int(0)}},
		[]symAtom{{L: x, R: relational.Int(1)}},
	)
	if _, ok := solveState(t, st); ok {
		t.Error("conflicting requirements should be UNSAT")
	}
}

func TestEncodeVarVarEquality(t *testing.T) {
	st := newState(t)
	x := st.addVar("x", bitDomain(), relational.KindInt)
	y := st.addVar("y", bitDomain(), relational.KindInt)
	// x = y required, x = 1 required → y = 1.
	st.required = append(st.required,
		[]symAtom{{L: x, R: y}},
		[]symAtom{{L: x, R: relational.Int(1)}},
	)
	e := newEncoder(st)
	f := e.encode()
	m, ok := sat.DPLL(f)
	if !ok {
		t.Fatal("should be SAT")
	}
	if !e.sel[1][1].Satisfied(m) {
		t.Error("x=y with x=1 should force y=1")
	}
	// Self-equality is trivially true; fresh-vs-fresh never equal.
	if e.atomLit(symAtom{L: x, R: x}) != e.litTrue {
		t.Error("x=x should be litTrue")
	}
}

func TestEncodeVarVarWithInfiniteDomains(t *testing.T) {
	st := newState(t)
	// Two string (infinite-domain) vars: their domains are the mentioned
	// constants plus a fresh slot; fresh slots never coincide.
	x := st.addVar("x", nil, relational.KindString)
	y := st.addVar("y", nil, relational.KindString)
	st.required = append(st.required,
		[]symAtom{{L: x, R: y}},
		[]symAtom{{L: x, R: relational.Str("hello")}},
	)
	e := newEncoder(st)
	f := e.encode()
	m, ok := sat.DPLL(f)
	if !ok {
		t.Fatal("should be SAT")
	}
	// Both must select "hello" (the only shared concrete value).
	if !e.sel[0][e.domainIndex(0, relational.Str("hello"))].Satisfied(m) {
		t.Error("x != hello")
	}
	if !e.sel[1][e.domainIndex(1, relational.Str("hello"))].Satisfied(m) {
		t.Error("y != hello")
	}

	// Requiring x=y but forbidding every shared constant → UNSAT (fresh
	// slots cannot be equal).
	st2 := newState(t)
	a := st2.addVar("a", nil, relational.KindString)
	b := st2.addVar("b", nil, relational.KindString)
	st2.required = append(st2.required, []symAtom{{L: a, R: b}})
	st2.forbidden = append(st2.forbidden,
		[]symAtom{{L: a, R: relational.Str("only")}},
	)
	// Mention "only" for b too so domains share it.
	st2.forbidden = append(st2.forbidden,
		[]symAtom{{L: b, R: relational.Str("only")}},
	)
	if _, ok := solveState(t, st2); ok {
		t.Error("a=b with the only shared constant forbidden should be UNSAT")
	}
}

func TestEncodeConstOutsideDomainIsFalse(t *testing.T) {
	st := newState(t)
	x := st.addVar("x", bitDomain(), relational.KindInt)
	e := newEncoder(st)
	if got := e.atomLit(symAtom{L: x, R: relational.Int(7)}); got != e.litFalse {
		t.Error("value outside the finite domain should yield litFalse")
	}
	if got := e.atomLit(symAtom{L: relational.Int(3), R: relational.Int(3)}); got != e.litTrue {
		t.Error("equal constants should yield litTrue")
	}
	if got := e.atomLit(symAtom{L: relational.Int(3), R: relational.Int(4)}); got != e.litFalse {
		t.Error("unequal constants should yield litFalse")
	}
}

func TestEncodeGuardedRowPicksMatch(t *testing.T) {
	// Guarded: ¬(g=1) ∨ (x matches an expected value). Require g=1 so the
	// guard cannot be discharged by falsifying the condition: the match
	// conjunction must then hold.
	st := newState(t)
	g := st.addVar("g", bitDomain(), relational.KindInt)
	x := st.addVar("x", bitDomain(), relational.KindInt)
	st.required = append(st.required, []symAtom{{L: g, R: relational.Int(1)}})
	st.guarded = append(st.guarded, guardedRow{
		conds:   []symAtom{{L: g, R: relational.Int(1)}},
		matches: [][]symAtom{{{L: x, R: relational.Int(0)}}},
	})
	e := newEncoder(st)
	f := e.encode()
	m, ok := sat.DPLL(f)
	if !ok {
		t.Fatal("should be SAT")
	}
	if !e.sel[1][0].Satisfied(m) {
		t.Error("guarded match should force x=0")
	}
}

func TestEncodeGuardedRowFalsifiesCondition(t *testing.T) {
	// Same guarded row but the match is impossible (empty domain overlap):
	// the solver must falsify the condition instead.
	st := newState(t)
	g := st.addVar("g", bitDomain(), relational.KindInt)
	x := st.addVar("x", bitDomain(), relational.KindInt)
	st.guarded = append(st.guarded, guardedRow{
		conds:   []symAtom{{L: g, R: relational.Int(1)}},
		matches: [][]symAtom{{{L: x, R: relational.Int(7)}}}, // outside domain
	})
	e := newEncoder(st)
	f := e.encode()
	m, ok := sat.DPLL(f)
	if !ok {
		t.Fatal("should be SAT")
	}
	if e.sel[0][1].Satisfied(m) {
		t.Error("condition g=1 should be falsified (match impossible)")
	}
}

func TestFreshValueKinds(t *testing.T) {
	st := &insertState{tr: &Translator{}}
	v, err := st.freshValue(relational.KindString)
	if err != nil || v.K != relational.KindString {
		t.Errorf("fresh string: %v %v", v, err)
	}
	v2, err := st.freshValue(relational.KindString)
	if err != nil || v2.Equal(v) {
		t.Error("fresh values must be distinct")
	}
	iv, err := st.freshValue(relational.KindInt)
	if err != nil || iv.K != relational.KindInt {
		t.Errorf("fresh int: %v %v", iv, err)
	}
	if _, err := st.freshValue(relational.KindBool); err == nil {
		t.Error("fresh bool should fail (finite domain)")
	}
}

func TestSymAtomAndVarHelpers(t *testing.T) {
	a := symAtom{L: relational.Var(0), R: relational.Int(1)}
	if a.String() != "?z0=1" {
		t.Errorf("String = %q", a.String())
	}
	atoms := []symAtom{
		{L: relational.Var(1), R: relational.Int(0)},
		{L: relational.Var(0), R: relational.Int(1)},
	}
	sortAtoms(atoms)
	if atoms[0].L.VarID() != 0 {
		t.Error("sortAtoms order")
	}
}
