package viewupdate

import (
	"sort"

	"rxview/internal/atg"
	"rxview/internal/dag"
	"rxview/internal/relational"
)

// MinimalDelete solves the minimal view deletion problem of §4.2: among all
// valid ΔR's, find one with the fewest base-tuple deletions. The problem is
// NP-complete even under key preservation (Theorem 3, by reduction from
// minimum set cover), so exact search is exponential; Exact uses branch and
// bound and is intended for small ΔV, Greedy is the polynomial heuristic
// (the classic ln(n)-approximate set-cover greedy).
type MinimalDelete struct {
	tr *Translator

	edges   []dag.Edge
	valid   [][]string       // per edge, encoded valid sources
	cover   map[string][]int // source -> edges it covers
	byEnc   map[string]atg.SourceKey
	uniqSrc []string // all distinct valid sources, sorted
}

// NewMinimalDelete prepares the instance; it returns a *RejectedError if
// some edge has no valid source (then no ΔR exists at all).
func NewMinimalDelete(tr *Translator, dv []dag.Edge) (*MinimalDelete, error) {
	m := &MinimalDelete{
		tr:    tr,
		cover: make(map[string][]int),
		byEnc: make(map[string]atg.SourceKey),
	}
	uses := make(map[string]int)
	all := make([][]atg.SourceKey, len(dv))
	for i, e := range dv {
		srcs := tr.sources(e)
		if len(srcs) == 0 {
			return nil, &RejectedError{Reason: "edge " + e.String() + " has no deletable source"}
		}
		all[i] = srcs
		for _, s := range srcs {
			uses[s.Encode()]++
		}
	}
	for i, e := range dv {
		var vs []string
		for _, s := range all[i] {
			enc := s.Encode()
			if tr.srcCount[enc] == uses[enc] {
				vs = append(vs, enc)
				m.byEnc[enc] = s
				m.cover[enc] = append(m.cover[enc], i)
			}
		}
		if len(vs) == 0 {
			return nil, &RejectedError{Reason: "edge " + e.String() + " has no side-effect-free source"}
		}
		m.edges = append(m.edges, e)
		m.valid = append(m.valid, vs)
	}
	for enc := range m.cover {
		m.uniqSrc = append(m.uniqSrc, enc)
	}
	sort.Strings(m.uniqSrc)
	return m, nil
}

// Greedy returns a small (not necessarily minimum) ΔR by repeatedly picking
// the source covering the most uncovered edges.
func (m *MinimalDelete) Greedy() ([]relational.Mutation, error) {
	covered := make([]bool, len(m.edges))
	remaining := len(m.edges)
	chosen := map[string]atg.SourceKey{}
	for remaining > 0 {
		best, bestN := "", 0
		for _, enc := range m.uniqSrc {
			if _, dup := chosen[enc]; dup {
				continue
			}
			n := 0
			for _, j := range m.cover[enc] {
				if !covered[j] {
					n++
				}
			}
			if n > bestN {
				best, bestN = enc, n
			}
		}
		if bestN == 0 {
			return nil, &RejectedError{Reason: "greedy cover stuck (unreachable: instance was validated)"}
		}
		chosen[best] = m.byEnc[best]
		for _, j := range m.cover[best] {
			if !covered[j] {
				covered[j] = true
				remaining--
			}
		}
	}
	return m.tr.sourcesToDeletions(chosen)
}

// Exact returns a minimum-size ΔR by branch and bound over the distinct
// valid sources. Exponential in the worst case (Theorem 3); use for small
// ΔV or in tests.
func (m *MinimalDelete) Exact() ([]relational.Mutation, error) {
	// Upper bound from greedy.
	greedy, err := m.Greedy()
	if err != nil {
		return nil, err
	}
	bestSize := len(greedy)
	var bestSet map[string]atg.SourceKey

	n := len(m.edges)
	var chosen []string
	var search func(edgeIdx int, covered []bool, count int)
	search = func(edgeIdx int, covered []bool, count int) {
		if count >= bestSize {
			return // bound
		}
		// Next uncovered edge.
		for edgeIdx < n && covered[edgeIdx] {
			edgeIdx++
		}
		if edgeIdx == n {
			bestSize = count
			bestSet = map[string]atg.SourceKey{}
			for _, enc := range chosen {
				bestSet[enc] = m.byEnc[enc]
			}
			return
		}
		for _, enc := range m.valid[edgeIdx] {
			newlyCovered := []int{}
			for _, j := range m.cover[enc] {
				if !covered[j] {
					covered[j] = true
					newlyCovered = append(newlyCovered, j)
				}
			}
			chosen = append(chosen, enc)
			search(edgeIdx+1, covered, count+1)
			chosen = chosen[:len(chosen)-1]
			for _, j := range newlyCovered {
				covered[j] = false
			}
		}
	}
	search(0, make([]bool, n), 0)

	if bestSet == nil {
		return greedy, nil // greedy was already optimal
	}
	return m.tr.sourcesToDeletions(bestSet)
}
