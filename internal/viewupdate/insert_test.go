package viewupdate

import (
	"errors"
	"testing"

	"rxview/internal/atg"
	"rxview/internal/dag"
	"rxview/internal/dtd"
	"rxview/internal/relational"
	"rxview/internal/workload"
)

// insertAndCheck runs the insert-side pipeline by hand: publish the subtree
// inside a transaction, connect it under the targets, translate, apply, and
// verify ΔX(T) = σ(ΔR(I)).
func insertAndCheck(t *testing.T, reg *workload.Registrar, d *dag.DAG, tr *Translator,
	targets []dag.NodeID, typ string, attr relational.Tuple) []relational.Mutation {
	t.Helper()
	d.Begin()
	root, err := reg.ATG.PublishSubtree(d, reg.DB, typ, attr)
	if err != nil {
		d.Rollback()
		t.Fatal(err)
	}
	for _, u := range targets {
		d.AddEdge(u, root)
	}
	newNodes, edgeAdds, _ := d.Changes()
	dr, induced, err := tr.TranslateInsert(edgeAdds, newNodes)
	if err != nil {
		d.Rollback()
		t.Fatalf("TranslateInsert: %v", err)
	}
	if err := reg.DB.Apply(dr); err != nil {
		d.Rollback()
		t.Fatal(err)
	}
	for _, ie := range induced {
		croot, err := reg.ATG.PublishSubtree(d, reg.DB, ie.ChildType, ie.Attr)
		if err != nil {
			t.Fatal(err)
		}
		d.AddEdge(ie.Parent, croot)
	}
	d.Commit()

	fresh, err := reg.ATG.PublishDAG(reg.DB)
	if err != nil {
		t.Fatal(err)
	}
	if err := dagsEquivalent(d, fresh); err != nil {
		t.Fatalf("ΔX(T) != σ(ΔR(I)): %v", err)
	}
	return dr
}

func TestInsertExistingCourseAsPrereq(t *testing.T) {
	// Insert CS240 (an existing course) as a prerequisite of CS650: only a
	// prereq tuple is needed, fully determined, no SAT involvement.
	reg, d, tr := fixture(t)
	pre650 := node(t, d, "prereq", "CS650")
	attr := relational.Tuple{relational.Str("CS240"), relational.Str("Algorithms")}
	dr := insertAndCheck(t, reg, d, tr, []dag.NodeID{pre650}, "course", attr)
	if len(dr) != 1 || dr[0].Table != "prereq" || !dr[0].Insert {
		t.Fatalf("ΔR = %v", dr)
	}
	if dr[0].Tuple[0].S != "CS650" || dr[0].Tuple[1].S != "CS240" {
		t.Fatalf("prereq tuple = %v", dr[0].Tuple)
	}
}

func TestInsertNewCourseDerivesNonCSDept(t *testing.T) {
	// Insert a brand-new course CS100 as prereq of CS240. The course
	// template's dept column is free; making it "CS" would surface CS100 at
	// the top level (an unrequested edge), so the SAT phase must choose
	// dept ≠ CS.
	reg, d, tr := fixture(t)
	pre240 := node(t, d, "prereq", "CS240")
	attr := relational.Tuple{relational.Str("CS100"), relational.Str("Intro")}
	dr := insertAndCheck(t, reg, d, tr, []dag.NodeID{pre240}, "course", attr)

	var course relational.Tuple
	for _, m := range dr {
		if m.Table == "course" {
			course = m.Tuple
		}
	}
	if course == nil {
		t.Fatalf("no course insertion in ΔR: %v", dr)
	}
	if course[2].S == "CS" {
		t.Errorf("dept = CS would be a side effect (top-level CS100)")
	}
}

func TestInsertNewCourseAtTopLevelForcesCSDept(t *testing.T) {
	// Inserting into the db root requires the edge db→course, whose rule
	// selects dept = 'CS': the required condition forces dept = CS.
	reg, d, tr := fixture(t)
	attr := relational.Tuple{relational.Str("CS110"), relational.Str("Programming")}
	dr := insertAndCheck(t, reg, d, tr, []dag.NodeID{d.Root()}, "course", attr)
	var course relational.Tuple
	for _, m := range dr {
		if m.Table == "course" {
			course = m.Tuple
		}
	}
	if course == nil || course[2].S != "CS" {
		t.Fatalf("ΔR = %v, want course with dept=CS", dr)
	}
}

func TestInsertRejectsHardSideEffect(t *testing.T) {
	// Insert EE100 (existing, dept=EE... actually dept mismatch): requiring
	// the edge db→course for a course whose EXISTING tuple has dept != CS
	// cannot be produced.
	reg, d, tr := fixture(t)
	attr := relational.Tuple{relational.Str("EE100"), relational.Str("Circuits")}
	d.Begin()
	defer d.Rollback()
	root, err := reg.ATG.PublishSubtree(d, reg.DB, "course", attr)
	if err != nil {
		t.Fatal(err)
	}
	d.AddEdge(d.Root(), root)
	newNodes, edgeAdds, _ := d.Changes()
	_, _, err = tr.TranslateInsert(edgeAdds, newNodes)
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v, want rejection (existing EE100 has dept=EE)", err)
	}
}

func TestInsertStudentIntoTakenBy(t *testing.T) {
	// Enrolling an existing student into CS240 needs one enroll tuple.
	reg, d, tr := fixture(t)
	tb240 := node(t, d, "takenBy", "CS240")
	attr := relational.Tuple{relational.Str("S01"), relational.Str("Ann")}
	dr := insertAndCheck(t, reg, d, tr, []dag.NodeID{tb240}, "student", attr)
	if len(dr) != 1 || dr[0].Table != "enroll" {
		t.Fatalf("ΔR = %v", dr)
	}
}

func TestInsertNewStudentGroup(t *testing.T) {
	// A new student into two takenBy nodes at once: one student tuple, two
	// enroll tuples.
	reg, d, tr := fixture(t)
	tb240 := node(t, d, "takenBy", "CS240")
	tb650 := node(t, d, "takenBy", "CS650")
	attr := relational.Tuple{relational.Str("S09"), relational.Str("Zoe")}
	dr := insertAndCheck(t, reg, d, tr, []dag.NodeID{tb240, tb650}, "student", attr)
	enrolls, students := 0, 0
	for _, m := range dr {
		switch m.Table {
		case "enroll":
			enrolls++
		case "student":
			students++
		}
	}
	if enrolls != 2 || students != 1 {
		t.Fatalf("ΔR = %v", dr)
	}
}

// flagFixture builds a two-rule ATG where inserting an item can conflict
// with the db-level rule on the same flag column — an unsatisfiable
// insertion (used to exercise the UNSAT path). Both rules read table U:
//
//	db  → box*   Qdb_box:   select u.k from U where u.flag = 0
//	box → item*  Qbox_item: select u.k from U where u.boxk = $box and u.flag = <itemFlag>
func flagFixture(t *testing.T, itemFlag int64) (*atg.Compiled, *relational.Database, *dag.DAG, *Translator) {
	t.Helper()
	intK := relational.KindInt
	bit := []relational.Value{relational.Int(0), relational.Int(1)}
	schema := relational.MustSchema(
		relational.MustTableSchema("U", []relational.Column{
			{Name: "k", Type: intK},
			{Name: "boxk", Type: intK},
			{Name: "flag", Type: intK, Domain: bit},
		}, "k"),
	)
	d, err := dtd.Parse(`
<!ELEMENT db (box*)>
<!ELEMENT box (item*)>
<!ELEMENT item (#PCDATA)>
`)
	if err != nil {
		t.Fatal(err)
	}
	qBox := &relational.SPJ{
		Name: "Qdb_box",
		From: []relational.TableRef{{Table: "U"}},
		Where: []relational.EqPred{
			{Left: relational.Col(0, 2), Right: relational.Const(relational.Int(0))},
		},
		Selects: []relational.SelectItem{{As: "k", Src: relational.Col(0, 0)}},
	}
	qItem := &relational.SPJ{
		Name:    "Qbox_item",
		NParams: 1,
		From:    []relational.TableRef{{Table: "U"}},
		Where: []relational.EqPred{
			{Left: relational.Col(0, 1), Right: relational.Param(0)},
			{Left: relational.Col(0, 2), Right: relational.Const(relational.Int(itemFlag))},
		},
		Selects: []relational.SelectItem{{As: "k", Src: relational.Col(0, 0)}},
	}
	compiled, err := atg.NewBuilder(d, schema).
		Attr("box", atg.Field("k", intK)).
		Attr("item", atg.Field("k", intK)).
		QueryRule("db", "box", qBox).
		QueryRule("box", "item", qItem).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	db := relational.NewDatabase(schema)
	db.Rel("U").MustInsert(relational.Int(1), relational.Int(0), relational.Int(0)) // box(1)
	dg, err := compiled.PublishDAG(db)
	if err != nil {
		t.Fatal(err)
	}
	return compiled, db, dg, NewTranslator(compiled, db, dg)
}

func TestInsertUnsatisfiableRejected(t *testing.T) {
	// itemFlag = 0: inserting item(9) under box(1) needs T(9, flag=0), but
	// flag=0 also makes box(9) appear under db (unrequested) — UNSAT.
	compiled, db, dg, tr := flagFixture(t, 0)
	_ = compiled
	_ = db
	box1, ok := dg.Lookup("box", relational.Tuple{relational.Int(1)})
	if !ok {
		t.Fatal("box(1) missing")
	}
	dg.Begin()
	defer dg.Rollback()
	item, _ := dg.AddNode("item", relational.Tuple{relational.Int(9)})
	dg.AddEdge(box1, item)
	newNodes, edgeAdds, _ := dg.Changes()
	_, _, err := tr.TranslateInsert(edgeAdds, newNodes)
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v, want UNSAT rejection", err)
	}
}

func TestInsertSatisfiableFlagVariant(t *testing.T) {
	// itemFlag = 1: flag must be 1 for the item edge and ≠0 keeps box(9)
	// out of the db level — satisfiable; ΔR = {T(9, 1)}.
	compiled, db, dg, tr := flagFixture(t, 1)
	box1, _ := dg.Lookup("box", relational.Tuple{relational.Int(1)})
	dg.Begin()
	item, _ := dg.AddNode("item", relational.Tuple{relational.Int(9)})
	dg.AddEdge(box1, item)
	newNodes, edgeAdds, _ := dg.Changes()
	dr, induced, err := tr.TranslateInsert(edgeAdds, newNodes)
	if err != nil {
		dg.Rollback()
		t.Fatal(err)
	}
	if len(dr) != 1 || dr[0].Table != "U" || dr[0].Tuple[2].I != 1 {
		t.Fatalf("ΔR = %v", dr)
	}
	if len(induced) != 0 {
		t.Fatalf("induced = %v", induced)
	}
	if err := db.Apply(dr); err != nil {
		t.Fatal(err)
	}
	dg.Commit()
	fresh, err := compiled.PublishDAG(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := dagsEquivalent(dg, fresh); err != nil {
		t.Fatal(err)
	}
}

func TestInsertWithInducedContent(t *testing.T) {
	// Synthetic dataset: inserting a new C under a sub node requires an F
	// row, and the F row generates an item under the new info node — an
	// induced edge, not a side effect.
	syn := workload.MustSynthetic(workload.SyntheticConfig{NC: 60, Seed: 7})
	d, err := syn.ATG.PublishDAG(syn.DB)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTranslator(syn.ATG, syn.DB, d)

	// Pick a published sub node to insert under.
	subs := d.NodesOfType("sub")
	if len(subs) == 0 {
		t.Fatal("no sub nodes")
	}
	target := subs[0]
	key := syn.NextKey
	attr := relational.Tuple{relational.Int(key), relational.Str("vNew")}

	d.Begin()
	root, err := syn.ATG.PublishSubtree(d, syn.DB, "C", attr)
	if err != nil {
		d.Rollback()
		t.Fatal(err)
	}
	d.AddEdge(target, root)
	newNodes, edgeAdds, _ := d.Changes()
	dr, induced, err := tr.TranslateInsert(edgeAdds, newNodes)
	if err != nil {
		d.Rollback()
		t.Fatalf("TranslateInsert: %v", err)
	}
	// Expect H + CU + F templates.
	tables := map[string]int{}
	for _, m := range dr {
		tables[m.Table]++
	}
	if tables["H"] != 1 || tables["CU"] != 1 || tables["F"] != 1 {
		t.Fatalf("ΔR tables = %v (%v)", tables, dr)
	}
	// The F row induces one item under the new info node.
	if len(induced) != 1 || induced[0].ChildType != "item" {
		t.Fatalf("induced = %v", induced)
	}
	if err := syn.DB.Apply(dr); err != nil {
		t.Fatal(err)
	}
	for _, ie := range induced {
		croot, err := syn.ATG.PublishSubtree(d, syn.DB, ie.ChildType, ie.Attr)
		if err != nil {
			t.Fatal(err)
		}
		d.AddEdge(ie.Parent, croot)
	}
	d.Commit()
	fresh, err := syn.ATG.PublishDAG(syn.DB)
	if err != nil {
		t.Fatal(err)
	}
	if err := dagsEquivalent(d, fresh); err != nil {
		t.Fatalf("ΔX(T) != σ(ΔR(I)): %v", err)
	}
	// The CU template's c5 column must not be 0 (that would surface the
	// new C at the top level)... unless the root rule reads table C, which
	// it does — CU and C are separate tables here, so no constraint ties
	// them; the consistency check above is the real arbiter.
}
