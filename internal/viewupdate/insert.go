package viewupdate

import (
	"fmt"

	"rxview/internal/atg"
	"rxview/internal/dag"
	"rxview/internal/relational"
)

// varInfo describes one symbolic variable of the insertion analysis: either
// an undetermined column of a tuple template (Appendix A's z variables) or a
// rule-query parameter during side-effect enumeration.
type varInfo struct {
	name    string
	typ     relational.Kind
	domain  []relational.Value // finite domain; nil = infinite
	isParam bool
}

// symAtom is an equality between two terms, each a concrete Value or a
// variable (KindVar). Conjunctions of atoms are the conditions φt of §4.3.
type symAtom struct {
	L, R relational.Value
}

func (a symAtom) String() string { return a.L.String() + "=" + a.R.String() }

// template is a base tuple to be inserted, possibly containing variables.
type template struct {
	table string
	row   relational.Tuple
}

// guardedRow encodes "if this combination's conditions hold, the produced
// edge must coincide with one of the expected edges": ¬φ ∨ ⋁ match_k.
type guardedRow struct {
	conds   []symAtom
	matches [][]symAtom // each match is a conjunction var=value
}

// inducedRow is a row produced under a NEW parent node (one created by this
// update's ST(A,t) publication). It is not a side effect: it is part of the
// final content of the inserted subtree once ΔR is applied — the subtree of
// the paper's semantics is defined against the post-update database. The
// caller materializes it after the SAT assignment fixes the variables.
type inducedRow struct {
	parent    dag.NodeID
	childType string
	attr      relational.Tuple // may contain vars
	conds     []symAtom
}

// InducedEdge is a concrete induced child to be published under a new node
// after ΔR is applied.
type InducedEdge struct {
	Parent    dag.NodeID
	ChildType string
	Attr      relational.Tuple
}

// insertState is the working state of Algorithm insert for one ΔV.
type insertState struct {
	tr        *Translator
	vars      []varInfo
	templates map[string]*template // table \x00 keyEnc -> template
	byTable   map[string][]*template
	newNodes  map[dag.NodeID]bool

	required  [][]symAtom
	forbidden [][]symAtom
	guarded   []guardedRow
	induced   []inducedRow
}

func (st *insertState) newVar(name string, col relational.Column) relational.Value {
	dom, _ := col.FiniteDomain()
	st.vars = append(st.vars, varInfo{name: name, typ: col.Type, domain: dom})
	return relational.Var(len(st.vars) - 1)
}

func (st *insertState) newParamVar(name string) relational.Value {
	st.vars = append(st.vars, varInfo{name: name, typ: relational.KindNull, isParam: true})
	return relational.Var(len(st.vars) - 1)
}

// TranslateInsert is Algorithm insert (§4.3): given the edges ΔV inserted
// into the view (already present in the DAG, inside a transaction), it
// computes base-table insertions ΔR such that ΔV(V(I)) = V(ΔR(I)), or
// rejects. The steps follow the paper:
//
//  1. derive tuple templates (with variables for undetermined columns) that
//     must exist for every ΔV edge to be produced by its rule query;
//  2. assert the production conditions of every ΔV edge (φt conjuncts);
//  3. symbolically evaluate every rule query over I ∪ X to find potential
//     type-1/type-2 side-effect rows; concrete unexpected rows reject ΔV,
//     conditional ones contribute ¬φt conjuncts (or guarded disjunctions
//     when the produced attribute still contains variables);
//  4. encode to SAT, solve with WalkSAT (DPLL fallback), and instantiate
//     the templates from the model. Unconstrained infinite-domain
//     variables get fresh values outside the active domain.
func (tr *Translator) TranslateInsert(dv []dag.Edge, newNodes []dag.NodeID) ([]relational.Mutation, []InducedEdge, error) {
	st := &insertState{
		tr:        tr,
		templates: make(map[string]*template),
		byTable:   make(map[string][]*template),
		newNodes:  make(map[dag.NodeID]bool, len(newNodes)),
	}
	for _, n := range newNodes {
		st.newNodes[n] = true
	}
	// Step 1: templates for missing sources.
	type pending struct {
		edge dag.Edge
		rule *atg.CompiledRule
	}
	var work []pending
	for _, e := range dv {
		r := tr.C.Rule(tr.D.Type(e.Parent), tr.D.Type(e.Child))
		if r == nil {
			return nil, nil, fmt.Errorf("viewupdate: no rule for edge %s (%s→%s)",
				e, tr.D.Type(e.Parent), tr.D.Type(e.Child))
		}
		if r.Prov == nil {
			continue // projection-rule edge: exists with its parent
		}
		work = append(work, pending{edge: e, rule: r})
		if err := st.buildTemplates(e, r); err != nil {
			return nil, nil, err
		}
	}
	// Step 2: required production conditions.
	for _, w := range work {
		if err := st.requireProduction(w.edge, w.rule); err != nil {
			return nil, nil, err
		}
	}
	// Step 3: side-effect enumeration.
	if err := st.findSideEffects(); err != nil {
		return nil, nil, err
	}
	// Step 4: solve and instantiate.
	return st.solve()
}

// buildTemplates creates/merges templates for every missing source tuple of
// edge e.
func (st *insertState) buildTemplates(e dag.Edge, r *atg.CompiledRule) error {
	tr := st.tr
	parentAttr, childAttr := tr.D.Attr(e.Parent), tr.D.Attr(e.Child)
	srcs := r.SourceTuples(parentAttr, childAttr)
	closure := relational.EqualityClosure(r.Query)
	for pos, s := range srcs {
		rel := tr.DB.Rel(s.Table)
		if rel == nil {
			return fmt.Errorf("viewupdate: no base table %s", s.Table)
		}
		if _, exists := rel.LookupKey(s.Key); exists {
			continue
		}
		enc := s.Encode()
		ts := rel.Schema
		tmpl := st.templates[enc]
		if tmpl == nil {
			tmpl = &template{table: s.Table, row: make(relational.Tuple, len(ts.Columns))}
			for c := range ts.Columns {
				tmpl.row[c] = relational.Value{} // placeholder
			}
			st.templates[enc] = tmpl
			st.byTable[s.Table] = append(st.byTable[s.Table], tmpl)
		}
		// Fill determined columns (keys + any column derivable from the
		// edge's attributes through the equality closure).
		for c := range ts.Columns {
			var det relational.Value
			have := false
			if ki := keyIndex(ts, c); ki >= 0 {
				det, have = s.Key[ki], true
			} else if d, ok := closure[[2]int{pos, c}]; ok {
				det, have = d.Resolve(childAttr, []relational.Value(parentAttr)), true
			}
			cur := tmpl.row[c]
			switch {
			case have && cur.IsNull():
				tmpl.row[c] = det
			case have && !cur.IsVar() && !cur.Equal(det):
				return &RejectedError{Reason: fmt.Sprintf(
					"conflicting requirements on %s.%s: %s vs %s",
					s.Table, ts.Columns[c].Name, cur, det)}
			case have && cur.IsVar():
				tmpl.row[c] = det // a later edge determined it
			case !have && cur.IsNull():
				tmpl.row[c] = st.newVar(
					fmt.Sprintf("%s[%s].%s", s.Table, s.Key, ts.Columns[c].Name),
					ts.Columns[c])
			}
		}
	}
	return nil
}

func keyIndex(ts *relational.TableSchema, col int) int {
	for i, k := range ts.Key {
		if k == col {
			return i
		}
	}
	return -1
}

// rowFor returns the combination row for a source: the existing base tuple
// or the template.
func (st *insertState) rowFor(s atg.SourceKey) (relational.Tuple, error) {
	if row, ok := st.tr.DB.Rel(s.Table).LookupKey(s.Key); ok {
		return row, nil
	}
	if tmpl := st.templates[s.Encode()]; tmpl != nil {
		return tmpl.row, nil
	}
	return nil, fmt.Errorf("viewupdate: source %s neither exists nor is templated", s)
}

// requireProduction asserts the WHERE conditions of the edge's unique
// derivation (key preservation): concrete violations reject; variable-
// involving equalities become required atoms.
func (st *insertState) requireProduction(e dag.Edge, r *atg.CompiledRule) error {
	tr := st.tr
	parentAttr, childAttr := tr.D.Attr(e.Parent), tr.D.Attr(e.Child)
	srcs := r.SourceTuples(parentAttr, childAttr)
	rows := make([]relational.Tuple, len(srcs))
	for i, s := range srcs {
		row, err := st.rowFor(s)
		if err != nil {
			return err
		}
		rows[i] = row
	}
	resolve := func(o relational.Operand) relational.Value {
		switch {
		case o.IsCol():
			return rows[o.Tab][o.Col]
		case o.IsConst():
			return o.Const
		default:
			return parentAttr[o.Param]
		}
	}
	var atoms []symAtom
	for _, p := range r.Query.Where {
		l, rv := resolve(p.Left), resolve(p.Right)
		if !l.IsVar() && !rv.IsVar() {
			if !l.Equal(rv) {
				return &RejectedError{Reason: fmt.Sprintf(
					"edge %s cannot be produced: condition %s=%s fails on existing data",
					e, l, rv)}
			}
			continue
		}
		atoms = append(atoms, symAtom{L: l, R: rv})
	}
	// The query outputs must equal the child attribute.
	for i, it := range r.Query.Selects {
		v := resolve(it.Src)
		want := childAttr[i]
		if !v.IsVar() {
			if !v.Equal(want) {
				return &RejectedError{Reason: fmt.Sprintf(
					"edge %s cannot be produced: output %s is %s, want %s",
					e, it.As, v, want)}
			}
			continue
		}
		atoms = append(atoms, symAtom{L: v, R: want})
	}
	if len(atoms) > 0 {
		st.required = append(st.required, atoms)
	}
	return nil
}
