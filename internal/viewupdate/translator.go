// Package viewupdate implements the relational side of the paper (§4):
// translating group updates ΔV over the (key-preserving, SPJ-defined) edge
// views into base-table updates ΔR.
//
//   - Deletions: Algorithm delete (Fig.9) — PTIME under key preservation
//     (Theorem 1), plus the minimal-deletion variants of Theorem 3 (exact
//     branch-and-bound and a greedy set-cover heuristic).
//   - Insertions: the heuristic Algorithm insert of §4.3/Appendix A — tuple
//     templates with variables, symbolic evaluation to find type-1/type-2
//     side effects, a SAT encoding, and a WalkSAT solve.
package viewupdate

import (
	"fmt"
	"sort"

	"rxview/internal/atg"
	"rxview/internal/dag"
	"rxview/internal/relational"
)

// Translator maintains the source index over the edge views: for every base
// tuple, how many live view edges it derives. With key preservation this
// makes the deletable source Sr(Q, t) of any edge an O(1) lookup, which is
// what turns the updatability analysis PTIME (Theorem 1).
type Translator struct {
	C  *atg.Compiled
	DB *relational.Database
	D  *dag.DAG

	// srcCount: SourceKey.Encode() -> number of live edges derived from it.
	srcCount map[string]int
	fresh    int64 // counter for fresh values (infinite-domain variables)
}

// NewTranslator builds the translator and its source index by scanning the
// live edges of the view.
func NewTranslator(c *atg.Compiled, db *relational.Database, d *dag.DAG) *Translator {
	tr := &Translator{C: c, DB: db, D: d, srcCount: make(map[string]int)}
	for _, u := range d.Nodes() {
		for _, v := range d.Children(u) {
			tr.bump(dag.Edge{Parent: u, Child: v}, +1)
		}
	}
	return tr
}

// sources returns the deletable source Sr(Q, t) of an edge, or nil for
// projection-rule edges (which have no independent source).
func (tr *Translator) sources(e dag.Edge) []atg.SourceKey {
	r := tr.C.Rule(tr.D.Type(e.Parent), tr.D.Type(e.Child))
	if r == nil || r.Prov == nil {
		return nil
	}
	return r.SourceTuples(tr.D.Attr(e.Parent), tr.D.Attr(e.Child))
}

func (tr *Translator) bump(e dag.Edge, delta int) {
	for _, s := range tr.sources(e) {
		tr.srcCount[s.Encode()] += delta
	}
}

// NoteEdgeInserted / NoteEdgeDeleted keep the source index current as the
// system applies ΔV to the view.
func (tr *Translator) NoteEdgeInserted(e dag.Edge) { tr.bump(e, +1) }

// NoteEdgeDeleted decrements the index for a removed edge.
func (tr *Translator) NoteEdgeDeleted(e dag.Edge) { tr.bump(e, -1) }

// RejectedError reports that ΔV is not translatable: carrying it out would
// necessarily cause relational view side effects.
type RejectedError struct{ Reason string }

func (e *RejectedError) Error() string { return "viewupdate: rejected: " + e.Reason }

// TranslateDelete is Algorithm delete (Fig.9). For each view deletion it
// finds a source tuple (Sj, tj) whose removal deletes the edge without side
// effects — i.e. (Sj, tj) is not in the deletable source of any view tuple
// that survives ΔV. It returns the group deletion ΔR, or a *RejectedError
// if some edge has no side-effect-free source (the updatability answer is
// then "no", decided in PTIME).
//
// Among valid sources it greedily prefers those covering the most not-yet-
// covered ΔV edges, so ΔR also tends to be small (exact minimality is
// NP-complete — Theorem 3; see MinimalDelete).
func (tr *Translator) TranslateDelete(dv []dag.Edge) ([]relational.Mutation, error) {
	type edgeInfo struct {
		edge dag.Edge
		srcs []atg.SourceKey
	}
	infos := make([]edgeInfo, 0, len(dv))
	// uses[s]: how many ΔV edges list s among their sources.
	uses := make(map[string]int)
	for _, e := range dv {
		srcs := tr.sources(e)
		if len(srcs) == 0 {
			return nil, &RejectedError{Reason: fmt.Sprintf(
				"edge %s of relation %s has no deletable source (sequence-child edge)",
				e, tr.D.EdgeRelationName(e))}
		}
		for _, s := range srcs {
			uses[s.Encode()]++
		}
		infos = append(infos, edgeInfo{edge: e, srcs: srcs})
	}

	// A source is valid iff every edge it derives is being deleted.
	valid := func(s atg.SourceKey) bool {
		enc := s.Encode()
		return tr.srcCount[enc] == uses[enc]
	}

	chosen := make(map[string]atg.SourceKey) // ΔR, deduped
	covered := make([]bool, len(infos))
	// coverage count per source over ΔV edges, for the greedy preference.
	cover := make(map[string][]int)
	for i, inf := range infos {
		for _, s := range inf.srcs {
			cover[s.Encode()] = append(cover[s.Encode()], i)
		}
	}

	for i, inf := range infos {
		if covered[i] {
			continue
		}
		var best atg.SourceKey
		bestCover := -1
		found := false
		for _, s := range inf.srcs {
			if !valid(s) {
				continue
			}
			n := 0
			for _, j := range cover[s.Encode()] {
				if !covered[j] {
					n++
				}
			}
			if n > bestCover {
				best, bestCover, found = s, n, true
			}
		}
		if !found {
			return nil, &RejectedError{Reason: fmt.Sprintf(
				"edge %s: every source tuple also derives a surviving view tuple (deletion has relational side effects)",
				inf.edge)}
		}
		enc := best.Encode()
		if _, dup := chosen[enc]; !dup {
			chosen[enc] = best
			for _, j := range cover[enc] {
				covered[j] = true
			}
		}
	}

	return tr.sourcesToDeletions(chosen)
}

func (tr *Translator) sourcesToDeletions(chosen map[string]atg.SourceKey) ([]relational.Mutation, error) {
	keys := make([]string, 0, len(chosen))
	for k := range chosen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]relational.Mutation, 0, len(keys))
	for _, k := range keys {
		s := chosen[k]
		rel := tr.DB.Rel(s.Table)
		if rel == nil {
			return nil, fmt.Errorf("viewupdate: no base table %s", s.Table)
		}
		row, ok := rel.LookupKey(s.Key)
		if !ok {
			return nil, fmt.Errorf("viewupdate: source tuple %s missing from %s (index out of sync)",
				s.Key, s.Table)
		}
		out = append(out, relational.Mutation{Table: s.Table, Tuple: row.Clone()})
	}
	return out, nil
}

// Updatable decides the SPJ view updatability problem for group deletions
// (Theorem 1: PTIME) without constructing ΔR.
func (tr *Translator) Updatable(dv []dag.Edge) bool {
	_, err := tr.TranslateDelete(dv)
	return err == nil
}
