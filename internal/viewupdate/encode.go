package viewupdate

import (
	"fmt"
	"sort"

	"rxview/internal/relational"
	"rxview/internal/sat"
)

// encoder turns the collected constraints into a propositional formula
// (§4.3's φ): every variable gets selector literals over its candidate
// values — the finite domain for bool/enum columns, or the constants it is
// compared against plus one "fresh" slot for infinite domains (case (b) of
// the paper: an unconstrained infinite-domain variable can always take a
// value outside the active domain, falsifying every comparison).
type encoder struct {
	st  *insertState
	cnf *sat.CNF

	domains [][]relational.Value // per variable; index len(domains[v]) = fresh
	sel     [][]sat.Lit          // selector literal per (var, domain index); last = fresh for infinite
	hasFr   []bool

	litTrue  sat.Lit
	litFalse sat.Lit
	eqCache  map[[2]int]sat.Lit
}

func newEncoder(st *insertState) *encoder {
	e := &encoder{st: st, cnf: sat.NewCNF(), eqCache: map[[2]int]sat.Lit{}}
	t := e.cnf.NewVar()
	e.litTrue = sat.Pos(t)
	e.litFalse = sat.Neg(t)
	e.cnf.AddClause(e.litTrue)
	e.buildDomains()
	return e
}

// buildDomains assigns candidate values per variable. Infinite-domain
// variables get every constant any same-kind variable is compared against
// (values can flow through var=var chains) plus a fresh slot.
func (e *encoder) buildDomains() {
	st := e.st
	nv := len(st.vars)
	constsByKind := map[relational.Kind][]relational.Value{}
	addConst := func(v relational.Value) {
		if v.IsVar() {
			return
		}
		for _, c := range constsByKind[v.K] {
			if c.Equal(v) {
				return
			}
		}
		constsByKind[v.K] = append(constsByKind[v.K], v)
	}
	forEachAtom := func(fn func(symAtom)) {
		for _, conj := range st.required {
			for _, a := range conj {
				fn(a)
			}
		}
		for _, conj := range st.forbidden {
			for _, a := range conj {
				fn(a)
			}
		}
		for _, g := range st.guarded {
			for _, a := range g.conds {
				fn(a)
			}
			for _, m := range g.matches {
				for _, a := range m {
					fn(a)
				}
			}
		}
	}
	forEachAtom(func(a symAtom) {
		addConst(a.L)
		addConst(a.R)
	})
	for k := range constsByKind {
		sort.Slice(constsByKind[k], func(i, j int) bool {
			return constsByKind[k][i].Compare(constsByKind[k][j]) < 0
		})
	}

	e.domains = make([][]relational.Value, nv)
	e.sel = make([][]sat.Lit, nv)
	e.hasFr = make([]bool, nv)
	for v := 0; v < nv; v++ {
		vi := st.vars[v]
		if vi.domain != nil {
			e.domains[v] = vi.domain
		} else {
			// Infinite domain (params that stayed symbolic never reach the
			// encoder; classify rejects them). Kind may be unknown for
			// unconstrained variables: give them just the fresh slot.
			if vi.typ != relational.KindNull {
				e.domains[v] = constsByKind[vi.typ]
			}
			e.hasFr[v] = true
		}
		lits := make([]sat.Lit, 0, len(e.domains[v])+1)
		for range e.domains[v] {
			lits = append(lits, sat.Pos(e.cnf.NewVar()))
		}
		if e.hasFr[v] {
			lits = append(lits, sat.Pos(e.cnf.NewVar()))
		}
		e.sel[v] = lits
		if len(lits) > 0 {
			e.cnf.AddExactlyOne(lits...)
		}
	}
}

func (e *encoder) domainIndex(v int, val relational.Value) int {
	for i, c := range e.domains[v] {
		if c.Equal(val) {
			return i
		}
	}
	return -1
}

// atomLit returns a literal equivalent to the atom (possibly via aux
// variables).
func (e *encoder) atomLit(a symAtom) sat.Lit {
	l, r := a.L, a.R
	if !l.IsVar() && r.IsVar() {
		l, r = r, l
	}
	switch {
	case !l.IsVar(): // const = const
		if l.Equal(r) {
			return e.litTrue
		}
		return e.litFalse
	case !r.IsVar(): // var = const
		v := l.VarID()
		i := e.domainIndex(v, r)
		if i < 0 {
			return e.litFalse // the constant is outside the domain
		}
		return e.sel[v][i]
	default: // var = var
		x, y := l.VarID(), r.VarID()
		if x == y {
			return e.litTrue
		}
		if x > y {
			x, y = y, x
		}
		if lit, ok := e.eqCache[[2]int{x, y}]; ok {
			return lit
		}
		eq := sat.Pos(e.cnf.NewVar())
		e.eqCache[[2]int{x, y}] = eq
		// eq ↔ ⋁_{shared c} (x=c ∧ y=c); fresh slots never coincide.
		for i, c := range e.domains[x] {
			j := e.domainIndex(y, c)
			if j >= 0 {
				// x=c ∧ y=c → eq
				e.cnf.AddClause(e.sel[x][i].Not(), e.sel[y][j].Not(), eq)
				// eq ∧ x=c → y=c, and symmetrically
				e.cnf.AddClause(eq.Not(), e.sel[x][i].Not(), e.sel[y][j])
				e.cnf.AddClause(eq.Not(), e.sel[y][j].Not(), e.sel[x][i])
			} else {
				// x=c with c outside dom(y): eq → ¬(x=c)
				e.cnf.AddClause(eq.Not(), e.sel[x][i].Not())
			}
		}
		for j, c := range e.domains[y] {
			if e.domainIndex(x, c) < 0 {
				e.cnf.AddClause(eq.Not(), e.sel[y][j].Not())
			}
		}
		if e.hasFr[x] {
			e.cnf.AddClause(eq.Not(), e.sel[x][len(e.domains[x])].Not())
		}
		if e.hasFr[y] {
			e.cnf.AddClause(eq.Not(), e.sel[y][len(e.domains[y])].Not())
		}
		return eq
	}
}

// encode builds the full formula.
func (e *encoder) encode() *sat.CNF {
	st := e.st
	for _, conj := range st.required {
		for _, a := range conj {
			e.cnf.AddClause(e.atomLit(a))
		}
	}
	for _, conj := range st.forbidden {
		clause := make(sat.Clause, 0, len(conj))
		for _, a := range conj {
			clause = append(clause, e.atomLit(a).Not())
		}
		e.cnf.AddClause(clause...)
	}
	for _, g := range st.guarded {
		clause := make(sat.Clause, 0, len(g.conds)+len(g.matches))
		for _, a := range g.conds {
			clause = append(clause, e.atomLit(a).Not())
		}
		for _, m := range g.matches {
			mk := sat.Pos(e.cnf.NewVar())
			for _, a := range m {
				e.cnf.AddClause(mk.Not(), e.atomLit(a)) // mk → atom
			}
			clause = append(clause, mk)
		}
		e.cnf.AddClause(clause...)
	}
	return e.cnf
}

// solve runs step 4: encode, solve (WalkSAT with a DPLL fallback — WalkSAT
// is incomplete, and the paper accepts rejecting satisfiable updates when
// the solver fails; the complete fallback removes that failure mode for the
// modest formulas this encoding produces), then instantiate the templates
// and the induced subtree content from the model.
func (st *insertState) solve() ([]relational.Mutation, []InducedEdge, error) {
	e := newEncoder(st)
	f := e.encode()
	model, ok := sat.WalkSAT(f, sat.WalkSATOptions{Seed: 1, MaxFlips: 20000, MaxRestarts: 10})
	if !ok {
		model, ok = sat.DPLL(f)
	}
	if !ok {
		return nil, nil, &RejectedError{Reason: "no side-effect-free instantiation exists (SAT unsatisfiable)"}
	}

	cache := map[int]relational.Value{}
	assign := func(v int) (relational.Value, error) {
		if got, ok := cache[v]; ok {
			return got, nil
		}
		for i, lit := range e.sel[v] {
			if !lit.Satisfied(model) {
				continue
			}
			if i < len(e.domains[v]) {
				cache[v] = e.domains[v][i]
				return e.domains[v][i], nil
			}
			break
		}
		// Fresh slot or fully unconstrained: pick a fresh value once.
		val, err := st.freshValue(st.vars[v].typ)
		if err != nil {
			return relational.Value{}, err
		}
		cache[v] = val
		return val, nil
	}
	concretize := func(t relational.Tuple) (relational.Tuple, error) {
		row := t.Clone()
		for i, v := range row {
			if v.IsVar() {
				val, err := assign(v.VarID())
				if err != nil {
					return nil, err
				}
				row[i] = val
			}
		}
		return row, nil
	}

	keys := make([]string, 0, len(st.templates))
	for k := range st.templates {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []relational.Mutation
	for _, k := range keys {
		tm := st.templates[k]
		row, err := concretize(tm.row)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, relational.Mutation{Table: tm.table, Insert: true, Tuple: row})
	}

	// Materialize induced rows whose conditions hold under the model.
	var induced []InducedEdge
	seen := map[string]bool{}
	for _, ir := range st.induced {
		holds := true
		for _, a := range ir.conds {
			l, err := concretizeValue(a.L, assign)
			if err != nil {
				return nil, nil, err
			}
			r, err := concretizeValue(a.R, assign)
			if err != nil {
				return nil, nil, err
			}
			if !l.Equal(r) {
				holds = false
				break
			}
		}
		if !holds {
			continue
		}
		attr, err := concretize(ir.attr)
		if err != nil {
			return nil, nil, err
		}
		key := fmt.Sprintf("%d|%s|%s", ir.parent, ir.childType, attr.Encode())
		if seen[key] {
			continue
		}
		seen[key] = true
		induced = append(induced, InducedEdge{Parent: ir.parent, ChildType: ir.childType, Attr: attr})
	}
	return out, induced, nil
}

func concretizeValue(v relational.Value, assign func(int) (relational.Value, error)) (relational.Value, error) {
	if v.IsVar() {
		return assign(v.VarID())
	}
	return v, nil
}

// freshValue picks a value outside the active domain for an infinite-domain
// variable (case (b) of §4.3).
func (st *insertState) freshValue(k relational.Kind) (relational.Value, error) {
	st.tr.fresh++
	switch k {
	case relational.KindString:
		return relational.Str(fmt.Sprintf("zfresh%d", st.tr.fresh)), nil
	case relational.KindInt:
		return relational.Int(int64(1)<<40 + st.tr.fresh), nil
	default:
		return relational.Value{}, fmt.Errorf("viewupdate: cannot pick a fresh value of kind %v", k)
	}
}
