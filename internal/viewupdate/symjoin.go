package viewupdate

import (
	"fmt"
	"sort"

	"rxview/internal/dag"
	"rxview/internal/relational"
)

// combo is one combination of base rows (existing and templates) that the
// symbolic evaluation of a rule query produced: its conditions (the
// variable-involving equalities), the resolved query parameters, and the
// produced child attribute.
type combo struct {
	ruleKey   string
	rowIDs    []string // per-FROM-position identity, for dedup
	conds     []symAtom
	params    relational.Tuple // resolved parent attribute; may contain vars
	childAttr relational.Tuple // may contain vars
}

func (c *combo) signature() string {
	out := c.ruleKey
	for _, id := range c.rowIDs {
		out += "|" + id
	}
	return out
}

// findSideEffects is step 3 of Algorithm insert: every rule query is
// evaluated over I ∪ X restricted to combinations using at least one
// template (combinations without templates existed before ΔR and produce no
// new rows). Each produced row is classified: already-expected edges add
// nothing; concrete unexpected edges reject ΔV; conditional rows add
// ¬φ conjuncts or guarded match disjunctions.
func (st *insertState) findSideEffects() error {
	seen := map[string]bool{}
	for _, rule := range st.tr.C.QueryRules() {
		q := rule.Query
		for pos, ref := range q.From {
			for _, tmpl := range st.byTable[ref.Table] {
				combos, err := st.symJoin(rule.Parent+"→"+rule.Child, q, pos, tmpl)
				if err != nil {
					return err
				}
				for _, cb := range combos {
					if seen[cb.signature()] {
						continue
					}
					seen[cb.signature()] = true
					if err := st.classify(rule.Parent, rule.Child, cb); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// symJoin enumerates the combinations of q's FROM entries where position
// driverPos is the given template. Placement is greedy: positions that can
// be bound through an index on a concretely known column go first.
func (st *insertState) symJoin(ruleKey string, q *relational.SPJ, driverPos int, driver *template) ([]combo, error) {
	n := len(q.From)
	rows := make([]relational.Tuple, n)
	rowIDs := make([]string, n)
	placed := make([]bool, n)

	// Parameter variables for this enumeration.
	params := make(relational.Tuple, q.NParams)
	for i := range params {
		params[i] = st.newParamVar(fmt.Sprintf("param%d", i))
	}
	subst := map[int]relational.Value{} // varID -> concrete (branch-local)

	deref := func(v relational.Value) relational.Value {
		for v.IsVar() {
			s, ok := subst[v.VarID()]
			if !ok {
				return v
			}
			v = s
		}
		return v
	}
	resolve := func(o relational.Operand) (relational.Value, bool) {
		switch {
		case o.IsConst():
			return o.Const, true
		case o.IsParam():
			return deref(params[o.Param]), true
		default:
			if !placed[o.Tab] {
				return relational.Value{}, false
			}
			return deref(rows[o.Tab][o.Col]), true
		}
	}

	var out []combo
	var conds []symAtom
	type undo struct {
		substKeys []int
		condLen   int
	}

	isParam := func(v relational.Value) bool {
		return v.IsVar() && st.vars[v.VarID()].isParam
	}
	// applyPred evaluates a predicate whose operands are both available;
	// returns ok=false to prune, and records undo info. Binding a PARAMETER
	// variable defines the parent attribute rather than constraining the
	// templates, so it updates subst without emitting a condition atom.
	applyPred := func(l, r relational.Value, u *undo) bool {
		l, r = deref(l), deref(r)
		if isParam(r) {
			l, r = r, l
		}
		switch {
		case !l.IsVar() && !r.IsVar():
			return l.Equal(r)
		case isParam(l):
			subst[l.VarID()] = r // r may itself be a template variable
			u.substKeys = append(u.substKeys, l.VarID())
			return true
		case l.IsVar() && !r.IsVar():
			subst[l.VarID()] = r
			u.substKeys = append(u.substKeys, l.VarID())
			conds = append(conds, symAtom{L: l, R: r})
			return true
		case !l.IsVar() && r.IsVar():
			subst[r.VarID()] = l
			u.substKeys = append(u.substKeys, r.VarID())
			conds = append(conds, symAtom{L: r, R: l})
			return true
		default:
			if l.VarID() != r.VarID() {
				conds = append(conds, symAtom{L: l, R: r})
			}
			return true
		}
	}

	var recurse func() error
	recurse = func() error {
		next := st.pickNext(q, placed, resolve)
		if next < 0 {
			// All placed: record the combination.
			cb := combo{
				ruleKey: ruleKey,
				rowIDs:  append([]string(nil), rowIDs...),
				conds:   append([]symAtom(nil), conds...),
			}
			for i := range params {
				cb.params = append(cb.params, deref(params[i]))
			}
			for _, it := range q.Selects {
				v, _ := resolve(it.Src)
				cb.childAttr = append(cb.childAttr, v)
			}
			out = append(out, cb)
			return nil
		}

		// Candidate rows: existing base rows (indexed when possible) plus
		// templates of this table.
		var candidates []relational.Tuple
		var ids []string
		rel := st.tr.DB.Rel(q.From[next].Table)
		idxCol, idxVal := st.indexBinding(q, next, placed, resolve)
		if idxCol >= 0 {
			for _, row := range rel.IndexLookup(idxCol, idxVal) {
				candidates = append(candidates, row)
				ids = append(ids, "I:"+row.EncodeCols(rel.Schema.Key))
			}
		} else {
			rel.Scan(func(row relational.Tuple) bool {
				candidates = append(candidates, row)
				ids = append(ids, "I:"+row.EncodeCols(rel.Schema.Key))
				return true
			})
		}
		for _, tm := range st.byTable[q.From[next].Table] {
			candidates = append(candidates, tm.row)
			ids = append(ids, "X:"+tm.row.EncodeCols(rel.Schema.Key))
		}

		for ci, row := range candidates {
			rows[next], rowIDs[next], placed[next] = row, ids[ci], true
			u := undo{condLen: len(conds)}
			ok := true
			for _, p := range q.Where {
				l, lok := resolve(p.Left)
				r, rok := resolve(p.Right)
				if !lok || !rok {
					continue // becomes available at a later placement
				}
				// Only apply predicates that became fully available at
				// this placement (mention position `next` or are
				// const/param-only and not yet checked): re-checking
				// earlier ones is harmless because they are idempotent
				// under subst.
				if !mentions(p, next) && !constParamOnly(p) {
					continue
				}
				if !applyPred(l, r, &u) {
					ok = false
					break
				}
			}
			if ok {
				if err := recurse(); err != nil {
					return err
				}
			}
			for _, k := range u.substKeys {
				delete(subst, k)
			}
			conds = conds[:u.condLen]
			placed[next] = false
		}
		return nil
	}

	// Place the driver first and apply its immediately-available predicates.
	rows[driverPos] = driver.row
	rowIDs[driverPos] = "X:" + driver.row.EncodeCols(st.tr.DB.Rel(driver.table).Schema.Key)
	placed[driverPos] = true
	u := undo{}
	ok := true
	for _, p := range q.Where {
		l, lok := resolve(p.Left)
		r, rok := resolve(p.Right)
		if lok && rok {
			if !applyPred(l, r, &u) {
				ok = false
				break
			}
		}
	}
	if ok {
		if err := recurse(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func mentions(p relational.EqPred, pos int) bool {
	return (p.Left.IsCol() && p.Left.Tab == pos) || (p.Right.IsCol() && p.Right.Tab == pos)
}

func constParamOnly(p relational.EqPred) bool {
	return !p.Left.IsCol() && !p.Right.IsCol()
}

// pickNext chooses the next FROM position: prefer one with an index binding
// (a predicate equating one of its columns to a concretely known value).
func (st *insertState) pickNext(q *relational.SPJ, placed []bool, resolve func(relational.Operand) (relational.Value, bool)) int {
	fallback := -1
	for pos := range q.From {
		if placed[pos] {
			continue
		}
		if fallback < 0 {
			fallback = pos
		}
		if c, _ := st.indexBindingResolved(q, pos, placed, resolve); c >= 0 {
			return pos
		}
	}
	return fallback
}

func (st *insertState) indexBinding(q *relational.SPJ, pos int, placed []bool, resolve func(relational.Operand) (relational.Value, bool)) (int, relational.Value) {
	return st.indexBindingResolved(q, pos, placed, resolve)
}

func (st *insertState) indexBindingResolved(q *relational.SPJ, pos int, placed []bool, resolve func(relational.Operand) (relational.Value, bool)) (int, relational.Value) {
	for _, p := range q.Where {
		l, r := p.Left, p.Right
		if r.IsCol() && r.Tab == pos {
			l, r = r, l
		}
		if !(l.IsCol() && l.Tab == pos) {
			continue
		}
		if r.IsCol() && (!placed[r.Tab] || r.Tab == pos) {
			continue
		}
		v, ok := resolve(r)
		if ok && !v.IsVar() {
			return l.Col, v
		}
	}
	return -1, relational.Value{}
}

// classify decides what a produced combination means (step 3's case
// analysis).
func (st *insertState) classify(parentType, childType string, cb combo) error {
	tr := st.tr
	// Simplify conditions: drop concrete tautologies, prune on concrete
	// contradictions.
	conds := cb.conds[:0:0]
	for _, a := range cb.conds {
		if !a.L.IsVar() && !a.R.IsVar() {
			if !a.L.Equal(a.R) {
				return nil // condition can never hold: no row produced
			}
			continue
		}
		conds = append(conds, a)
	}

	// Resolve the parent node.
	if cb.params.HasVar() {
		return &RejectedError{Reason: fmt.Sprintf(
			"cannot determine the parent %s attribute of a potential side-effect row (parameters %s unresolved)",
			parentType, cb.params)}
	}
	parent, ok := tr.D.Lookup(parentType, cb.params)
	if !ok {
		return nil // no such parent element in the view: no edge arises
	}

	if !cb.childAttr.HasVar() {
		if child, ok := tr.D.Lookup(childType, cb.childAttr); ok && tr.D.HasEdge(parent, child) {
			return nil // expected: the edge is in V ∪ ΔV
		}
		if st.newNodes[parent] {
			// Under a node created by this very update the row is not a
			// side effect: it is content of the inserted subtree in the
			// post-ΔR database. Materialized after solving.
			st.induced = append(st.induced, inducedRow{
				parent: parent, childType: childType,
				attr: cb.childAttr.Clone(), conds: conds,
			})
			return nil
		}
		if len(conds) == 0 {
			return &RejectedError{Reason: fmt.Sprintf(
				"insertion would create an unrequested %s edge under %s%s (hard side effect)",
				childType, parentType, cb.params)}
		}
		st.forbidden = append(st.forbidden, conds)
		return nil
	}

	if st.newNodes[parent] {
		st.induced = append(st.induced, inducedRow{
			parent: parent, childType: childType,
			attr: cb.childAttr.Clone(), conds: conds,
		})
		return nil
	}

	// The produced attribute still contains variables: the row is safe iff
	// its conditions fail OR the attribute coincides with an expected child.
	var matches [][]symAtom
	for _, c := range tr.D.Children(parent) {
		if tr.D.Type(c) != childType {
			continue
		}
		want := tr.D.Attr(c)
		var m []symAtom
		feasible := true
		for i, v := range cb.childAttr {
			if v.IsVar() {
				m = append(m, symAtom{L: v, R: want[i]})
			} else if !v.Equal(want[i]) {
				feasible = false
				break
			}
		}
		if feasible {
			matches = append(matches, m)
		}
	}
	if len(matches) == 0 {
		if len(conds) == 0 {
			return &RejectedError{Reason: fmt.Sprintf(
				"insertion unconditionally creates a %s edge under %s%s matching no requested edge",
				childType, parentType, cb.params)}
		}
		st.forbidden = append(st.forbidden, conds)
		return nil
	}
	st.guarded = append(st.guarded, guardedRow{conds: conds, matches: matches})
	return nil
}

// sortAtoms gives deterministic ordering for tests and encoding.
func sortAtoms(atoms []symAtom) {
	sort.Slice(atoms, func(i, j int) bool {
		return atoms[i].String() < atoms[j].String()
	})
}

var _ = sortAtoms // used by tests
var _ = dag.InvalidNode
