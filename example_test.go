package rxview_test

import (
	"context"
	"errors"
	"fmt"

	"rxview"
)

// ExampleOpen publishes the paper's registrar database (Example 1) and runs
// a recursive XPath query over the DAG-compressed view.
func ExampleOpen() {
	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		panic(err)
	}
	view, err := rxview.Open(atg, db)
	if err != nil {
		panic(err)
	}
	courses, err := view.Query(context.Background(), `//course`)
	if err != nil {
		panic(err)
	}
	for _, c := range courses {
		fmt.Println(c)
	}
	// Output:
	// course(CS650, Advanced Topics)
	// course(CS320, Databases)
	// course(CS240, Algorithms)
}

// ExampleView_Apply deletes one prerequisite edge and shows the relational
// translation ΔR the update compiles to.
func ExampleView_Apply() {
	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		panic(err)
	}
	view, err := rxview.Open(atg, db)
	if err != nil {
		panic(err)
	}
	rep, err := view.Apply(context.Background(),
		rxview.Delete(`//course[cno="CS320"]/prereq/course[cno="CS240"]`))
	if err != nil {
		panic(err)
	}
	for _, m := range rep.Changes {
		fmt.Println(m)
	}
	fmt.Println("consistent:", view.CheckConsistency() == nil)
	// Output:
	// delete prereq (CS320, CS240)
	// consistent: true
}

// ExampleView_Batch enrolls several students with one deferred maintenance
// pass over the auxiliary structures L and M, instead of paying the
// maintenance cost per update.
func ExampleView_Batch() {
	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		panic(err)
	}
	view, err := rxview.Open(atg, db)
	if err != nil {
		panic(err)
	}
	reports, err := view.Batch(context.Background(),
		rxview.Insert(`//course[cno="CS650"]/takenBy`, "student", rxview.Str("S21"), rxview.Str("Uma")),
		rxview.Insert(`//course[cno="CS650"]/takenBy`, "student", rxview.Str("S22"), rxview.Str("Vic")),
		rxview.Insert(`//course[cno="CS650"]/takenBy`, "student", rxview.Str("S23"), rxview.Str("Wes")),
	)
	if err != nil {
		panic(err)
	}
	applied := 0
	for _, r := range reports {
		if r.Applied {
			applied++
		}
	}
	fmt.Println("applied:", applied)
	fmt.Println("consistent:", view.CheckConsistency() == nil)
	// Output:
	// applied: 3
	// consistent: true
}

// ExampleWithSideEffectPolicy shows a programmable update strategy: the
// policy receives each detected side effect and decides it individually.
func ExampleWithSideEffectPolicy() {
	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		panic(err)
	}
	view, err := rxview.Open(atg, db,
		rxview.WithSideEffectPolicy(func(info rxview.SideEffectInfo) rxview.Decision {
			if info.Delete {
				return rxview.Reject // never cascade through shared subtrees
			}
			return rxview.ApplyEverywhere // revised semantics for insertions
		}))
	if err != nil {
		panic(err)
	}
	// CS240's subtree is shared; the policy applies the insertion at every
	// occurrence.
	rep, err := view.Apply(context.Background(),
		rxview.Insert(`course[cno="CS650"]//course[cno="CS240"]/takenBy`,
			"student", rxview.Str("S31"), rxview.Str("Ada")))
	if err != nil {
		panic(err)
	}
	fmt.Println("applied with side effects:", rep.Applied && rep.SideEffects)

	// Deleting the shared CS240 occurrence is refused by the same policy.
	_, err = view.Apply(context.Background(),
		rxview.Delete(`course[cno="CS650"]//course[cno="CS240"]`))
	fmt.Println("delete rejected:", errors.Is(err, rxview.ErrSideEffect))
	// Output:
	// applied with side effects: true
	// delete rejected: true
}
