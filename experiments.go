package rxview

import (
	"time"

	"rxview/internal/bench"
	"rxview/internal/workload"
)

// This file re-exports the experiment harness that regenerates the paper's
// evaluation (§5): dataset statistics (Fig.10b), the update-performance
// series (Fig.11a–h), incremental maintenance vs recomputation (Table 1),
// and the ablations. It backs the root bench_test.go and cmd/benchrunner.

// Phases accumulates the per-phase times of Fig.11: (a) XPath evaluation,
// (b) translation + execution, (c) maintenance.
type Phases struct {
	Eval     time.Duration
	XToDV    time.Duration
	DVToDR   time.Duration
	Apply    time.Duration
	Maintain time.Duration
}

// Translate returns the (b) component.
func (p Phases) Translate() time.Duration { return p.XToDV + p.DVToDR + p.Apply }

// Total sums everything.
func (p Phases) Total() time.Duration { return p.Eval + p.Translate() + p.Maintain }

func phasesOf(p bench.Phases) Phases {
	return Phases{Eval: p.Eval, XToDV: p.XToDV, DVToDR: p.DVToDR, Apply: p.Apply, Maintain: p.Maintain}
}

// RunResult is the outcome of one workload run.
type RunResult struct {
	Size    int
	Class   WorkloadClass
	Ops     int
	Applied int
	NoOps   int
	Phases  Phases
}

// RunWorkload generates the synthetic dataset at size nc, opens it, and runs
// nops updates of the given class (deletions or insertions), accumulating
// the Fig.11 phase breakdown.
func RunWorkload(nc int, class WorkloadClass, deletes bool, nops int, seed int64) (RunResult, error) {
	res, err := bench.RunWorkload(nc, workload.Class(class), deletes, nops, seed)
	if err != nil {
		return RunResult{}, err
	}
	return RunResult{
		Size:    res.Size,
		Class:   WorkloadClass(res.Class),
		Ops:     res.Ops,
		Applied: res.Applied,
		NoOps:   res.NoOps,
		Phases:  phasesOf(res.Phases),
	}, nil
}

// DatasetStats publishes the synthetic dataset at size nc and returns its
// Fig.10(b) statistics plus the generation + publication wall time.
func DatasetStats(nc int, seed int64) (Stats, time.Duration, error) {
	st, took, err := bench.DatasetStats(nc, seed)
	if err != nil {
		return Stats{}, 0, err
	}
	return statsOf(st), took, nil
}

// SelectionPoint is one point of the Fig.11(g) sweep: runtime as a function
// of the number of nodes the update path selects.
type SelectionPoint struct {
	Targets int // requested |r[[p]]| / |Ep(r)| scale
	RP, EP  int // measured
	Del     Phases
	Ins     Phases
}

// VarySelection reproduces Fig.11(g) at fixed |C| = nc.
func VarySelection(nc int, targets []int, seed int64) ([]SelectionPoint, error) {
	pts, err := bench.VarySelection(nc, targets, seed)
	if err != nil {
		return nil, err
	}
	out := make([]SelectionPoint, len(pts))
	for i, p := range pts {
		out[i] = SelectionPoint{
			Targets: p.Targets, RP: p.RP, EP: p.EP,
			Del: phasesOf(p.Del), Ins: phasesOf(p.Ins),
		}
	}
	return out, nil
}

// SubtreePoint is one point of the Fig.11(h) sweep: runtime as a function of
// the inserted subtree size |ST(A,t)| with |r[[p]]| = |Ep(r)| = 1.
type SubtreePoint struct {
	STEdges int
	Ins     Phases
	Del     Phases
}

// VarySubtree reproduces Fig.11(h) at fixed |C| = nc.
func VarySubtree(nc int, fanouts []int, seed int64) ([]SubtreePoint, error) {
	pts, err := bench.VarySubtree(nc, fanouts, seed)
	if err != nil {
		return nil, err
	}
	out := make([]SubtreePoint, len(pts))
	for i, p := range pts {
		out[i] = SubtreePoint{STEdges: p.STEdges, Ins: phasesOf(p.Ins), Del: phasesOf(p.Del)}
	}
	return out, nil
}

// MaintenanceResult compares incremental maintenance of L and M against full
// recomputation (Table 1 of the paper).
type MaintenanceResult struct {
	Size       int
	IncrInsert time.Duration // ∆(M,L)insert for one representative insertion
	IncrDelete time.Duration // ∆(M,L)delete for one representative deletion
	RecomputeL time.Duration
	RecomputeM time.Duration
}

// MaintenanceTable measures one point of the Table 1 comparison.
func MaintenanceTable(nc int, seed int64) (MaintenanceResult, error) {
	res, err := bench.Table1(nc, seed)
	if err != nil {
		return MaintenanceResult{}, err
	}
	return MaintenanceResult{
		Size:       res.Size,
		IncrInsert: res.IncrInsert,
		IncrDelete: res.IncrDelete,
		RecomputeL: res.RecomputeL,
		RecomputeM: res.RecomputeM,
	}, nil
}

// ReachAblation compares Algorithm Reach (Fig.4) against a per-node DFS
// transitive closure on the same DAG.
func ReachAblation(nc int, seed int64) (fig4, naive time.Duration, pairs int, err error) {
	return bench.ReachAblation(nc, seed)
}

// MatrixAblation compares the bitset representation of the reachability
// matrix M (word-level row unions) against the paper's sparse relation
// layout (per-pair map inserts) on the same synthetic DAG.
func MatrixAblation(nc int, seed int64) (bitset, sparse time.Duration, pairs int, err error) {
	return bench.MatrixAblation(nc, seed)
}

// DAGvsTree evaluates the same recursive query on the DAG compression and on
// the fully unfolded tree: the point of §2.3's compression.
func DAGvsTree(nc int, seed int64) (dagTime, treeTime time.Duration, dagNodes, treeNodes int, err error) {
	return bench.DAGvsTree(nc, seed)
}

// SideEffectAblation compares full XPath evaluation (exact side-effect
// detection) against the selection-only fast path.
func SideEffectAblation(nc int, seed int64) (full, selectOnly time.Duration, err error) {
	return bench.SideEffectAblation(nc, seed)
}

// EvalStrategyAblation compares the exact NFA evaluator with the
// paper-literal frontier evaluator (// expanded through M).
func EvalStrategyAblation(nc int, seed int64) (nfa, frontier time.Duration, err error) {
	return bench.EvalStrategyAblation(nc, seed)
}

// MinDeleteAblation compares the greedy and exact minimal-deletion
// algorithms (Theorem 3).
func MinDeleteAblation(nc int, seed int64) (greedyT, exactT time.Duration, greedyN, exactN int, err error) {
	return bench.MinDeleteAblation(nc, seed)
}
