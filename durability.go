package rxview

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"rxview/internal/core"
	"rxview/internal/dag"
	"rxview/internal/relational"
	"rxview/internal/storage"
	"rxview/internal/wal"
)

// Durability glue: the root package owns the checkpoint payload format and
// converts between core's commit records and the wal's on-disk records —
// core cannot import wal (core owns the commit path and must stay
// storage-agnostic) and wal cannot import core, so the two meet here.

// defaultCheckpointEvery is the commit count between automatic checkpoints
// when WithCheckpointEvery is not given.
const defaultCheckpointEvery = 256

// ckptVersion versions the checkpoint payload layout.
const ckptVersion = 1

// openDurable is Open with WithDurability: recover the newest durable state
// from the directory (or establish the genesis epoch from the provided DB),
// install the commit sink, and seal the boot state with a checkpoint.
func openDurable(a *ATG, db *DB, cfg *config) (*View, error) {
	var pol wal.SyncPolicy
	switch cfg.fsync {
	case FsyncAlways:
		pol = wal.SyncAlways
	case FsyncBatch:
		pol = wal.SyncBatch
	case FsyncOff:
		pol = wal.SyncOff
	default:
		return nil, fmt.Errorf("rxview: unknown fsync policy %d", int(cfg.fsync))
	}
	log, boot, err := wal.Open(cfg.durDir, wal.Options{Policy: pol})
	if err != nil {
		return nil, walErr(cfg.durDir, err)
	}

	var sys *core.System
	if boot == nil {
		// Fresh directory: publish from the caller-seeded DB as usual; the
		// checkpoint below makes generation 0 the genesis epoch.
		sys, err = core.OpenBackend(a.c, storage.NewMemory(db.db), cfg.opts)
		if err != nil {
			return nil, err
		}
	} else {
		for _, w := range boot.Warnings {
			warnTo(cfg.warn, "rxview: recovery: %s", w)
		}
		sys, err = recoverSystem(a, db, cfg, boot)
		if err != nil {
			return nil, err
		}
	}

	v := &View{
		sys:       sys,
		db:        db,
		log:       log,
		warn:      cfg.warn,
		ckptEvery: uint64(cfg.ckptEvery),
		ckptGen:   sys.Generation(),
	}
	if v.ckptEvery == 0 {
		v.ckptEvery = defaultCheckpointEvery
	}
	// Seal the boot state before serving: recovery never appends to old
	// segments, so the boot checkpoint is what gives the log an active
	// segment again (and prunes what the recovered state supersedes).
	if err := log.WriteCheckpoint(sys.Generation(), encodeCheckpoint(sys)); err != nil {
		return nil, fmt.Errorf("rxview: boot checkpoint: %w", err)
	}
	sys.SetCommitSink(v.sinkRecords, v.afterDurable)
	return v, nil
}

// recoverSystem rebuilds the system from a checkpoint payload plus the log
// suffix: decode, replace the DB contents, replay, verify.
func recoverSystem(a *ATG, db *DB, cfg *config, boot *wal.BootState) (*core.System, error) {
	ck, err := decodeCheckpoint(boot.State)
	if err != nil {
		return nil, &CorruptLogError{Dir: cfg.durDir, Err: err}
	}
	if ck.gen != boot.Gen {
		return nil, &CheckpointMismatchError{Dir: cfg.durDir,
			Err: fmt.Errorf("checkpoint payload is for generation %d, file for %d", ck.gen, boot.Gen)}
	}
	db.db.Reset()
	for _, tb := range ck.tables {
		for _, t := range tb.tuples {
			if err := db.db.Insert(tb.name, t); err != nil {
				return nil, &CorruptLogError{Dir: cfg.durDir,
					Err: fmt.Errorf("checkpointed tuple rejected: %w", err)}
			}
		}
	}
	d, err := dag.DecodeState(ck.dagState)
	if err != nil {
		return nil, &CorruptLogError{Dir: cfg.durDir, Err: err}
	}
	recs := make([]core.CommitRecord, len(boot.Records))
	for i, r := range boot.Records {
		recs[i] = core.CommitRecord{Gen: r.Gen, Delta: r.Delta, DR: r.DR}
	}
	sys, err := core.Recover(a.c, storage.NewMemory(db.db), d, ck.order, boot.Gen, recs, cfg.opts)
	if err != nil {
		return nil, &CheckpointMismatchError{Dir: cfg.durDir, Err: err}
	}
	if err := sys.CheckConsistency(); err != nil {
		return nil, &CheckpointMismatchError{Dir: cfg.durDir,
			Err: fmt.Errorf("recovered state fails consistency check: %w", err)}
	}
	return sys, nil
}

// sinkRecords is the core.CommitSink of a durable view: it appends the
// commit's records to the log before the commit verdict is returned. A
// refused append flips the view into degraded mode and surfaces as a
// DegradedError; the log's all-or-nothing append guarantees the refused
// records can never resurface in a later recovery, so Applied:false is a
// true verdict at this layer (the View wrappers upgrade it to Applied:true
// when the commit had already mutated memory under prefix semantics).
func (v *View) sinkRecords(recs []core.CommitRecord) error {
	wrecs := make([]wal.Record, len(recs))
	for i, r := range recs {
		wrecs[i] = wal.Record{Gen: r.Gen, Delta: r.Delta, DR: r.DR}
	}
	if err := v.log.Append(wrecs); err != nil {
		v.markDegraded(err)
		return &DegradedError{Cause: err}
	}
	// The append can succeed and still kill the log (crash-after-fsync:
	// the record is durable, the verdict stands, but the log refuses
	// further writes). Degrade proactively so the next write is rejected
	// up front instead of burning a full pipeline run first.
	if err := v.log.Failed(); err != nil {
		v.markDegraded(err)
	}
	return nil
}

// markDegraded flips the view into degraded (read-only) mode, keeping the
// first cause. Writer-goroutine only.
func (v *View) markDegraded(cause error) {
	if v.degraded.CompareAndSwap(false, true) {
		v.degradedCause = cause
		warnTo(v.warn, "rxview: entering degraded mode: %v", cause)
	}
}

// Degraded reports whether the view is in degraded (read-only) mode after a
// disk failure: writes are rejected with ErrDegraded, snapshot reads keep
// serving the last acknowledged state, and Recover restores read-write.
// Like Checkpointing it is safe to call from any goroutine — it is the
// health-probe hook. Always false without durability.
func (v *View) Degraded() bool { return v.degraded.Load() }

// Recover attempts to leave degraded mode: it reopens the log (repairing
// the torn tail of the active segment, exactly like boot recovery) and
// seals the in-memory state with a fresh checkpoint, then restores
// read-write atomically. No-op when the view is not degraded; ErrTxOpen
// while a transaction is open.
//
// The in-memory state is authoritative here: every refused write was
// reported either guaranteed-unapplied (rolled back, absent from memory) or
// applied-but-not-durable, so checkpointing memory both re-establishes the
// active segment and — honestly — makes the indeterminate prefix durable
// after all. Serving layers call this from a backoff probe routed through
// their writer goroutine; it must not race other View methods.
func (v *View) Recover() error {
	if v.log == nil || !v.degraded.Load() {
		return nil
	}
	if v.sys.InTxn() {
		return ErrTxOpen
	}
	warning, err := v.log.Reopen()
	if warning != "" {
		warnTo(v.warn, "rxview: recovery: %s", warning)
	}
	if err != nil {
		return err
	}
	v.ckptBusy.Store(true)
	defer v.ckptBusy.Store(false)
	if err := v.log.WriteCheckpoint(v.sys.Generation(), encodeCheckpoint(v.sys)); err != nil {
		return err
	}
	v.ckptGen = v.sys.Generation()
	v.degradedCause = nil
	v.degraded.Store(false)
	warnTo(v.warn, "rxview: recovered from degraded mode at generation %d", v.ckptGen)
	return nil
}

// afterDurable runs after each durable commit, once the system is quiescent:
// the periodic checkpoint trigger. A failed checkpoint is reported and
// retried at the next commit — the log keeps every record since the last
// successful one, so nothing is lost, the log just grows.
func (v *View) afterDurable(gen uint64) {
	if gen-v.ckptGen < v.ckptEvery {
		return
	}
	if err := v.Checkpoint(); err != nil {
		warnTo(v.warn, "rxview: checkpoint at generation %d failed: %v", gen, err)
	}
}

// Checkpoint seals the current epoch: the full view state is serialized at
// the current generation, the log rotates to a fresh segment, and the
// prefix the checkpoint supersedes is pruned. Durable views checkpoint
// automatically (WithCheckpointEvery); an explicit call bounds recovery
// time before a planned stop. No-op on a view without durability; ErrTxOpen
// while a transaction is open.
func (v *View) Checkpoint() error {
	if v.log == nil {
		return nil
	}
	if v.sys.InTxn() {
		return ErrTxOpen
	}
	v.ckptBusy.Store(true)
	defer v.ckptBusy.Store(false)
	if err := v.log.WriteCheckpoint(v.sys.Generation(), encodeCheckpoint(v.sys)); err != nil {
		return err
	}
	v.ckptGen = v.sys.Generation()
	return nil
}

// Checkpointing reports whether a checkpoint is being written right now —
// the full state is serialized, fsynced and rotated in, which stalls the
// writer for the duration. Unlike the View's other methods it is safe to
// call from any goroutine: it is the readiness probe serving layers fold
// into /healthz so load balancers drain a node during the stall. Always
// false without durability.
func (v *View) Checkpointing() bool { return v.ckptBusy.Load() }

// Close flushes a final checkpoint and closes the log, so the next Open
// recovers without replaying anything. No-op on a view without durability
// (and on repeat calls); the view itself stays usable, just no longer
// durable.
func (v *View) Close() error {
	if v.log == nil {
		return nil
	}
	err := v.Checkpoint()
	if cerr := v.log.Close(); err == nil {
		err = cerr
	}
	v.log = nil
	v.sys.SetCommitSink(nil, nil)
	return err
}

// warnTo formats a finding into the warning sink, if one is installed.
func warnTo(warn func(string), format string, args ...any) {
	if warn != nil {
		warn(fmt.Sprintf(format, args...))
	}
}

// walErr maps wal-layer sentinel errors into the public taxonomy.
func walErr(dir string, err error) error {
	switch {
	case errors.Is(err, wal.ErrCorrupt):
		return &CorruptLogError{Dir: dir, Err: err}
	case errors.Is(err, wal.ErrMismatch):
		return &CheckpointMismatchError{Dir: dir, Err: err}
	}
	return err
}

// checkpoint is the decoded payload: the relational instance, the DAG with
// its full identity table, the topological order, and the generation — all
// of it at one sealed epoch.
type checkpoint struct {
	gen      uint64
	tables   []ckptTable
	dagState []byte
	order    []dag.NodeID
}

type ckptTable struct {
	name   string
	tuples []relational.Tuple
}

// encodeCheckpoint serializes the full state of the system. The layout is
// version, generation, the tables (tuples sorted by their injective
// encoding, so the payload is byte-stable), the DAG state, and L. M is not
// serialized: it is uniquely determined as the transitive closure of the
// DAG, and recovery recomputes it.
func encodeCheckpoint(sys *core.System) []byte {
	dst := []byte{ckptVersion}
	dst = binary.AppendUvarint(dst, sys.Generation())
	names := sys.DB.Schema.TableNames()
	dst = binary.AppendUvarint(dst, uint64(len(names)))
	for _, name := range names {
		dst = binary.AppendUvarint(dst, uint64(len(name)))
		dst = append(dst, name...)
		tuples := sys.DB.Rel(name).Tuples()
		sort.Slice(tuples, func(i, j int) bool { return tuples[i].Encode() < tuples[j].Encode() })
		dst = binary.AppendUvarint(dst, uint64(len(tuples)))
		for _, t := range tuples {
			dst = relational.AppendTuple(dst, t)
		}
	}
	dagState := sys.DAG.AppendState(nil)
	dst = binary.AppendUvarint(dst, uint64(len(dagState)))
	dst = append(dst, dagState...)
	order := sys.Index.Topo.Nodes()
	dst = binary.AppendUvarint(dst, uint64(len(order)))
	for _, id := range order {
		dst = binary.AppendUvarint(dst, uint64(id))
	}
	return dst
}

func decodeCheckpoint(b []byte) (*checkpoint, error) {
	if len(b) == 0 || b[0] != ckptVersion {
		return nil, fmt.Errorf("checkpoint: unsupported version")
	}
	b = b[1:]
	ck := &checkpoint{}
	var w int
	var u uint64
	next := func(what string) (uint64, error) {
		u, w = binary.Uvarint(b)
		if w <= 0 {
			return 0, fmt.Errorf("checkpoint: bad %s", what)
		}
		b = b[w:]
		return u, nil
	}
	gen, err := next("generation")
	if err != nil {
		return nil, err
	}
	ck.gen = gen
	nt, err := next("table count")
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nt; i++ {
		nl, err := next("table name length")
		if err != nil {
			return nil, err
		}
		if nl > uint64(len(b)) {
			return nil, fmt.Errorf("checkpoint: table name exceeds input")
		}
		tb := ckptTable{name: string(b[:nl])}
		b = b[nl:]
		cnt, err := next("tuple count")
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < cnt; j++ {
			t, rest, err := relational.DecodeTuple(b)
			if err != nil {
				return nil, fmt.Errorf("checkpoint: table %s tuple %d: %w", tb.name, j, err)
			}
			tb.tuples = append(tb.tuples, t)
			b = rest
		}
		ck.tables = append(ck.tables, tb)
	}
	dl, err := next("DAG state length")
	if err != nil {
		return nil, err
	}
	if dl > uint64(len(b)) {
		return nil, fmt.Errorf("checkpoint: DAG state exceeds input")
	}
	ck.dagState = b[:dl]
	b = b[dl:]
	on, err := next("order length")
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < on; i++ {
		id, err := next("order entry")
		if err != nil {
			return nil, err
		}
		ck.order = append(ck.order, dag.NodeID(id))
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes", len(b))
	}
	return ck, nil
}
