package server_test

import (
	"context"
	"errors"
	"testing"

	"rxview"
)

// TestQueryMemoServesRepeatsAndResetsPerEpoch checks the per-epoch result
// memo: repeats of a query within one epoch are memo hits returning the
// same answer; an applied write publishes a fresh epoch whose first read
// misses the memo and sees the write (read-your-writes is not weakened by
// caching).
func TestQueryMemoServesRepeatsAndResetsPerEpoch(t *testing.T) {
	ctx := context.Background()
	e, _ := mustRegistrarEngine(t, rxview.WithForceSideEffects())

	const q = `//course[cno="CS650"]/takenBy/student`
	first, err := e.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	st0 := e.Stats()
	if st0.QueryMemoMisses == 0 {
		t.Fatalf("first read should miss the memo: %+v", st0)
	}

	again, err := e.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	st1 := e.Stats()
	if st1.QueryMemoHits != st0.QueryMemoHits+1 {
		t.Fatalf("repeat read should hit the memo: before %+v after %+v", st0, st1)
	}
	if render(again.Nodes) != render(first.Nodes) || again.Generation != first.Generation {
		t.Fatal("memo hit returned a different answer")
	}

	// Write, then re-read: a new epoch is published with an empty memo, so
	// the read must miss and include the new student.
	u := rxview.Insert(`//course[cno="CS650"]/takenBy`, "student", rxview.Str("S77"), rxview.Str("Memo"))
	if rep, err := e.Update(ctx, u); err != nil || !rep.Applied {
		t.Fatalf("update: rep=%+v err=%v", rep, err)
	}
	after, err := e.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Nodes) != len(first.Nodes)+1 {
		t.Fatalf("post-write read = %d nodes, want %d", len(after.Nodes), len(first.Nodes)+1)
	}
	st2 := e.Stats()
	if st2.QueryMemoMisses != st1.QueryMemoMisses+1 {
		t.Fatalf("post-write read should miss the fresh epoch's memo: %+v", st2)
	}

	// The compiled-path cache is process-wide: by now q parsed at most once
	// since the counters moved, and hits keep accumulating.
	if st2.PathCacheHits == 0 {
		t.Fatalf("compiled-path cache never hit: %+v", st2)
	}
}

// TestQueryMemoParseErrorFastPath: malformed queries are not memoized per
// epoch (they never evaluate), but their parse error is cached at the
// compiled-path layer and keeps failing fast with ErrParse.
func TestQueryMemoParseErrorFastPath(t *testing.T) {
	ctx := context.Background()
	e, _ := mustRegistrarEngine(t)

	_, misses0 := rxview.PathCacheStats()
	for i := 0; i < 3; i++ {
		if _, err := e.Query(ctx, `//course[`); !errors.Is(err, rxview.ErrParse) {
			t.Fatalf("want ErrParse, got %v", err)
		}
	}
	_, misses1 := rxview.PathCacheStats()
	if misses1 > misses0+1 {
		t.Fatalf("malformed query re-parsed: misses %d -> %d", misses0, misses1)
	}
}
