package server

// Per-engine telemetry. Every Engine owns a private obs.Registry so two
// engines in one process never collide and Stats stays per-engine; the
// HTTP layer scrapes it together with the process-wide obs.Default
// registry (pipeline, WAL, caches). Recording sites below run on the
// apply loop or the wait-free read path and therefore use only the atomic
// fast-path API — the locked Gather/snapshot side is reserved for the
// scrape handlers (the xviewlint obshotpath analyzer checks this).

import (
	"time"

	"rxview"
	"rxview/obs"
)

// engineMetrics bundles the handles the engine's hot paths record into.
type engineMetrics struct {
	reg  *obs.Registry
	slow *obs.SlowLog

	queries    *obs.Counter
	applied    *obs.Counter
	rejected   *obs.Counter
	txCommits  *obs.Counter
	txRejected *obs.Counter
	coalRuns   *obs.Counter
	coalUpds   *obs.Counter
	snapSwaps  *obs.Counter
	memoHits   *obs.Counter
	memoMisses *obs.Counter

	// Resilience families: overload shedding and degraded-mode serving.
	shed       *obs.Counter
	probes     *obs.Counter
	recoveries *obs.Counter

	// Follower families: zero on primary engines, recorded by the follow
	// loop on replicas (see replica.go).
	followRecs       *obs.Counter
	followResyncs    *obs.Counter
	followReconnects *obs.Counter

	depth     *obs.Gauge // queued, not yet picked up by the loop
	degradedG *obs.Gauge // 1 while the view is degraded (read-only)
	followLag *obs.Gauge // follower generations behind the primary's durable watermark

	queryDur   *obs.Histogram
	publishDur *obs.Histogram
	runSize    *obs.Histogram
	readerLag  *obs.Histogram
	queueWait  *obs.Histogram
}

// newEngineMetrics registers the engine families on a fresh registry.
func newEngineMetrics() engineMetrics {
	r := obs.NewRegistry()
	return engineMetrics{
		reg:  r,
		slow: obs.NewSlowLog(128),
		queries: r.NewCounter("xview_engine_queries_total",
			"Engine.Query calls (memo hits included)."),
		applied: r.NewCounter("xview_engine_updates_applied_total",
			"Updates the apply loop applied."),
		rejected: r.NewCounter("xview_engine_updates_rejected_total",
			"Write submissions delivered with an error."),
		txCommits: r.NewCounter("xview_engine_tx_committed_total",
			"Atomic groups committed."),
		txRejected: r.NewCounter("xview_engine_tx_rejected_total",
			"Atomic groups rejected or rolled back."),
		coalRuns: r.NewCounter("xview_engine_coalesced_runs_total",
			"Multi-member coalesced insert runs executed."),
		coalUpds: r.NewCounter("xview_engine_coalesced_updates_total",
			"Updates absorbed into coalesced runs."),
		snapSwaps: r.NewCounter("xview_engine_snapshot_swaps_total",
			"Epoch publications (snapshot seal + swap)."),
		memoHits: r.NewCounter("xview_engine_memo_hits_total",
			"Queries served from the per-epoch result memo."),
		memoMisses: r.NewCounter("xview_engine_memo_misses_total",
			"Queries evaluated past the per-epoch result memo."),
		shed: r.NewCounter("xview_engine_writes_shed_total",
			"Writes refused by admission control (queue at watermark or estimated wait past the deadline)."),
		probes: r.NewCounter("xview_engine_recovery_probes_total",
			"Degraded-mode recovery attempts executed by the apply loop."),
		recoveries: r.NewCounter("xview_engine_recoveries_total",
			"Successful degraded-to-read-write transitions."),
		followRecs: r.NewCounter("xview_follower_records_total",
			"Streamed commit records this follower applied."),
		followResyncs: r.NewCounter("xview_follower_resyncs_total",
			"Checkpoint re-fetches after a pruned or gapped stream."),
		followReconnects: r.NewCounter("xview_follower_reconnects_total",
			"Stream reconnects after a transport failure (clean long-poll recycles excluded)."),
		depth: r.NewGauge("xview_engine_queue_depth",
			"Write submissions queued for the apply loop."),
		degradedG: r.NewGauge("xview_engine_degraded",
			"1 while the view is degraded (read-only after a disk failure), else 0."),
		followLag: r.NewGauge("xview_follower_lag",
			"Generations between this follower and the primary's durable watermark (0 on primaries)."),
		queryDur: r.NewHistogram("xview_engine_query_seconds",
			"Engine.Query evaluation latency past the result memo (memo hits are counter-only: timing them would dominate their cost).",
			obs.LatencyBounds()),
		publishDur: r.NewHistogram("xview_engine_publish_seconds",
			"Epoch publication latency: sealing the copy-on-write snapshot plus the pointer swap.",
			obs.LatencyBounds()),
		runSize: r.NewHistogram("xview_engine_coalesced_run_updates",
			"Members per coalesced insert run.", obs.CountBounds(8)),
		readerLag: r.NewHistogram("xview_engine_reader_generation_lag",
			"Generations between the epoch a memo-missing query read and the newest delivered write at that moment.",
			obs.CountBounds(12)),
		queueWait: r.NewHistogram("xview_engine_queue_wait_seconds",
			"Time a write submission spent queued before the apply loop picked it up.",
			obs.LatencyBounds()),
	}
}

// Metrics returns the engine's private metric registry, for scraping
// alongside obs.Default(). Locked-API side — handlers and tools only.
func (e *Engine) Metrics() *obs.Registry { return e.met.reg }

// SlowLog returns the engine's slow-operation ring buffer.
func (e *Engine) SlowLog() *obs.SlowLog { return e.met.slow }

// SetSlowThreshold sets the duration above which queries and commits land
// in the slow log; zero disables it. Safe for concurrent use.
func (e *Engine) SetSlowThreshold(d time.Duration) { e.met.slow.SetThreshold(d) }

// stampPublish attributes one epoch publication's duration to the write
// unit that triggered it: the last applied report gets the Publish phase,
// so summing Timings over delivered reports counts each publication once.
func stampPublish(d time.Duration, reps ...*rxview.Report) {
	if d <= 0 {
		return
	}
	for i := len(reps) - 1; i >= 0; i-- {
		if reps[i] != nil && reps[i].Applied {
			reps[i].Timings.Publish = d
			return
		}
	}
}
