package server_test

// Black-box tests of the transactional serving surface: atomic groups
// through Engine.Tx, the one-epoch-per-commit guarantee under concurrent
// readers, and the POST /tx endpoint.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"rxview"
	"rxview/server"
)

func txGroupInserts(k, round int) []rxview.Update {
	out := make([]rxview.Update, k)
	for i := range out {
		cno := fmt.Sprintf("TX%03d%02d", round, i)
		out[i] = rxview.Insert(`.`, "course", rxview.Str(cno), rxview.Str("t"))
	}
	return out
}

func TestEngineTxAtomicCommitAndRejection(t *testing.T) {
	ctx := context.Background()
	e, _ := mustRegistrarEngine(t)
	gen0 := e.Generation()

	// Commit: every member applies, generation advances by exactly 1.
	reps, err := e.Tx(ctx,
		rxview.Insert(`.`, "course", rxview.Str("CS111"), rxview.Str("Intro")),
		rxview.Insert(`//course[cno="CS111"]/prereq`, "course", rxview.Str("CS112"), rxview.Str("II")),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || !reps[0].Applied || !reps[1].Applied {
		t.Fatalf("reports = %+v", reps)
	}
	if got := e.Generation(); got != gen0+1 {
		t.Fatalf("generation = %d, want %d (one per committed group)", got, gen0+1)
	}
	// Read-your-writes: the group is visible from the published snapshot.
	res, err := e.Query(ctx, `//course[cno="CS112"]`)
	if err != nil || len(res.Nodes) != 1 {
		t.Fatalf("query after tx = %v, %v", res.Nodes, err)
	}

	// Rejection: a shared-subtree insert mid-group dooms it; nothing applies.
	before, err := e.Query(ctx, `//course`)
	if err != nil {
		t.Fatal(err)
	}
	shared := rxview.Insert(`course[cno="CS650"]//course[cno="CS320"]/prereq`,
		"course", rxview.Str("CS777"), rxview.Str("Sharing"))
	reps, err = e.Tx(ctx,
		rxview.Insert(`.`, "course", rxview.Str("CS211"), rxview.Str("Gone")),
		shared,
		rxview.Insert(`.`, "course", rxview.Str("CS212"), rxview.Str("Never")),
	)
	if !errors.Is(err, rxview.ErrSideEffect) {
		t.Fatalf("tx err = %v, want ErrSideEffect", err)
	}
	// Reports cover the staged prefix plus the rejected member.
	if len(reps) != 2 || reps[1].Applied {
		t.Fatalf("rejected-group reports = %+v", reps)
	}
	if got := e.Generation(); got != gen0+1 {
		t.Fatalf("generation moved on rejected group: %d", got)
	}
	after, err := e.Query(ctx, `//course`)
	if err != nil {
		t.Fatal(err)
	}
	if render(after.Nodes) != render(before.Nodes) {
		t.Fatal("rejected group left visible changes")
	}
	st := e.Stats()
	if st.TxCommitted != 1 || st.TxRejected != 1 {
		t.Fatalf("tx counters = %d/%d, want 1/1", st.TxCommitted, st.TxRejected)
	}
}

// TestTxReadersNeverObserveMidTransaction is the acceptance stress: a
// writer commits groups of k inserts while readers hammer snapshots; every
// observed snapshot must contain a multiple of k transactional courses —
// a mid-transaction generation (or a partially visible group) would show a
// remainder. Run with -race this also exercises publication under load.
func TestTxReadersNeverObserveMidTransaction(t *testing.T) {
	ctx := context.Background()
	e, _ := mustRegistrarEngine(t)
	const k, rounds, readers = 5, 12, 4

	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, readers+1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastGen uint64
			for !stop.Load() {
				res, err := e.Query(ctx, `//course[title="t"]`)
				if err != nil {
					errc <- err
					return
				}
				if len(res.Nodes)%k != 0 {
					errc <- fmt.Errorf("observed %d transactional courses at generation %d — not a multiple of %d: mid-transaction state leaked",
						len(res.Nodes), res.Generation, k)
					return
				}
				if res.Generation < lastGen {
					errc <- fmt.Errorf("generation went backwards: %d after %d", res.Generation, lastGen)
					return
				}
				lastGen = res.Generation
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for round := 0; round < rounds; round++ {
			if _, err := e.Tx(ctx, txGroupInserts(k, round)...); err != nil {
				errc <- fmt.Errorf("round %d: %w", round, err)
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if got := e.Generation(); got != uint64(rounds) {
		t.Fatalf("generation = %d after %d committed groups, want %d", got, rounds, rounds)
	}
	res, err := e.Query(ctx, `//course[title="t"]`)
	if err != nil || len(res.Nodes) != k*rounds {
		t.Fatalf("final state: %d courses, err %v; want %d", len(res.Nodes), err, k*rounds)
	}
}

// Atomic groups submitted concurrently with plain inserts must be applied
// as groups, never coalesced into an insert run (regression: gather() once
// pulled tx requests into runs as zero-value updates, silently dropping the
// group).
func TestTxConcurrentWithPlainInsertsIsNotCoalesced(t *testing.T) {
	ctx := context.Background()
	e, _ := mustRegistrarEngine(t)
	const k, rounds, writers = 3, 8, 3

	var wg sync.WaitGroup
	errc := make(chan error, writers+1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				cno := fmt.Sprintf("PL%d%02d", w, i)
				if _, err := e.Update(ctx, rxview.Insert(`.`, "course", rxview.Str(cno), rxview.Str("plain"))); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < rounds; round++ {
			reps, err := e.Tx(ctx, txGroupInserts(k, round)...)
			if err != nil {
				errc <- fmt.Errorf("tx round %d: %w", round, err)
				return
			}
			if len(reps) != k {
				errc <- fmt.Errorf("tx round %d: %d reports, want %d", round, len(reps), k)
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	tx, err := e.Query(ctx, `//course[title="t"]`)
	if err != nil || len(tx.Nodes) != k*rounds {
		t.Fatalf("transactional courses = %d, err %v; want %d", len(tx.Nodes), err, k*rounds)
	}
	plain, err := e.Query(ctx, `//course[title="plain"]`)
	if err != nil || len(plain.Nodes) != writers*rounds {
		t.Fatalf("plain courses = %d, err %v; want %d", len(plain.Nodes), err, writers*rounds)
	}
}

func TestHandlerTxEndpoint(t *testing.T) {
	e, _ := mustRegistrarEngine(t)
	srv := httptest.NewServer(server.NewHandler(e, server.HandlerOptions{}))
	defer srv.Close()

	post := func(t *testing.T, body string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/tx", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp, out
	}

	// Atomic group in, per-update reports + single generation out.
	resp, out := post(t, `{"updates":[
		{"kind":"insert","path":".","type":"course","values":["CS111","Intro"]},
		{"kind":"insert","path":"//course[cno=\"CS111\"]/prereq","type":"course","values":["CS112","II"]}
	]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %v", resp.StatusCode, out)
	}
	if gen := out["generation"].(float64); gen != 1 {
		t.Fatalf("generation = %v, want 1", out["generation"])
	}
	reports := out["reports"].([]any)
	if len(reports) != 2 {
		t.Fatalf("reports = %v", out["reports"])
	}
	for i, r := range reports {
		if applied := r.(map[string]any)["applied"].(bool); !applied {
			t.Fatalf("report %d not applied: %v", i, r)
		}
	}

	// 409 on group rejection; the earlier member must not have applied.
	resp, out = post(t, `{"updates":[
		{"kind":"insert","path":".","type":"course","values":["CS311","Gone"]},
		{"kind":"insert","path":"course[cno=\"CS650\"]//course[cno=\"CS320\"]/prereq","type":"course","values":["CS777","Sharing"]}
	]}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d, want 409: %v", resp.StatusCode, out)
	}
	if out["error"] == "" {
		t.Fatal("409 carries no error")
	}
	if reports, ok := out["reports"].([]any); !ok || len(reports) != 2 {
		t.Fatalf("409 reports = %v, want the staged pair", out["reports"])
	}
	q, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader(`{"path":"//course[cno=\"CS311\"]"}`))
	if err != nil {
		t.Fatal(err)
	}
	var qr struct {
		Count int `json:"count"`
	}
	if err := json.NewDecoder(q.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	q.Body.Close()
	if qr.Count != 0 {
		t.Fatal("rejected group member visible via /query")
	}

	// Malformed member: 400, nothing staged.
	resp, _ = post(t, `{"updates":[{"kind":"frobnicate","path":"."}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}
