// Package server makes a published XML view safely shareable under
// concurrent load. The underlying rxview.View is single-writer by design —
// the paper's pipeline (translate → side-effect check → ∆(M,L) maintenance)
// mutates the DAG and the auxiliary structures in place — so this package
// adds the serving layer on top instead of sprinkling locks through the
// engine:
//
//   - Reads are snapshot-isolated and wait-free. An Engine publishes an
//     immutable epoch snapshot (the DAG and the topological order sealed
//     together + the view's generation counter; the reachability matrix
//     enters as its size — no read path consults its rows) through an
//     atomic pointer; queries evaluate against whatever epoch they load
//     and never block behind a write or observe a half-maintained
//     structure.
//
//   - Publication is O(Δ). Sealing an epoch is copy-on-write: unchanged
//     chunks of per-node state are shared between the live view and every
//     sealed epoch, and the writer copies only what it dirties, when it
//     dirties it. Publishing after a write therefore costs microseconds
//     independent of view size (the deep-clone path survives as
//     View.CloneSnapshot — the aliasing-test oracle and differential
//     baseline, not a serving primitive). Versioned epochs change nothing
//     about the consistency model: the same states are published at the
//     same generations, merely cheaper.
//
//   - Repeated reads are memoized per epoch. Query texts compile once
//     through a process-wide LRU (parse errors included — malformed
//     queries fail fast), and each published epoch carries a result memo
//     keyed by path text: the memo's lifetime is the epoch, so a hit can
//     never cross generations. Memo hits return a shared Node slice;
//     callers must treat it as read-only.
//
//   - Writes are serialized through a single-writer apply loop. Updates are
//     submitted to a channel-fed goroutine; consecutive insertions are
//     coalesced into View.Batch runs (one deferred ∆(M,L) flush per run
//     instead of one per update) while preserving per-update independence:
//     a mid-run rejection fails only its own update, and the rest of the
//     run is re-applied. Each submission gets its verdict back through a
//     promise channel. Context cancellation is honored both in-queue (a
//     canceled update is skipped and reports context.Canceled without being
//     applied) and in-flight (the pipeline's phase checks abort it).
//
//   - Atomic groups go through Engine.Tx (HTTP: POST /tx): the loop runs
//     the group as one view transaction — every update stages
//     speculatively, reading the group's earlier writes — and commits all
//     of it or none. A committed group advances the generation by exactly
//     1 and publishes exactly one epoch covering all its updates; a
//     rejected group (HTTP 409) publishes nothing, because the view never
//     moved. Snapshot readers therefore cannot observe a mid-transaction
//     state: epochs step from group to group, never into one. This is the
//     complement of /batch, which keeps its documented prefix semantics —
//     a failed batch leaves the successful prefix applied (one generation
//     per applied update), where a failed tx leaves nothing.
//
//   - After every write the loop seals and publishes a fresh snapshot, so
//     a reader's result always corresponds to an exact prefix of the write
//     history, identified by the generation it carries, and a writer whose
//     Update returned reads its own write from the very next Query.
//
// Consistency model: reads are snapshot-consistent (every query observes
// the state after some prefix of the applied write units — an update, a
// batch member, or a whole committed transaction — never a partial one),
// writes are strictly serialized in submission-processing order, and reads
// never wait on writes. A reader may observe a slightly stale epoch; it
// will never observe a torn one.
//
// Durability composes transparently: on a view opened with
// rxview.WithDurability, every verdict the apply loop delivers — update,
// batch member, committed transaction — is already in the write-ahead log
// when the caller sees it (durable-before-verdict), so killing the process
// after any acknowledged write loses nothing; restart recovery replays the
// log and the engine serves the same generations. The engine itself needs
// no changes for this: the sink sits under View's commit path. Close the
// engine before View.Close so the final checkpoint sees a quiescent view.
//
// The engine also owns the resilience half of the serving contract:
//
//   - Overload protection. Admission control sheds a write up front —
//     *OverloadedError, errors.Is-matchable to ErrOverloaded, carrying a
//     RetryAfter estimate from an EWMA of recent service times — when the
//     queue depth passes the shed watermark (WithShedWatermark) or when
//     the request's own deadline cannot survive the estimated queue wait.
//     HTTP maps it to 429 + Retry-After. Reads are never shed; they do
//     not cross the queue. A write whose context expires while queued is
//     skipped, guaranteed unapplied.
//
//   - Degraded-mode serving. When a WAL failure flips the view read-only,
//     the loop keeps draining the queue — refusing writes with the view's
//     DegradedError verdicts, serving reads from the published epoch —
//     and a recovery prober retries View.Recover with jittered
//     exponential backoff (WithRecoveryBackoff) until the log heals;
//     /healthz reports "degraded" meanwhile. Stats exposes WritesShed,
//     Degraded and Recoveries; LoadGen's writer honors Retry-After and
//     retries only verdicts that guarantee non-application.
//
// NewHandler exposes the Engine over HTTP/JSON (the cmd/xviewd daemon and
// xviewctl -serve share it), and LoadGen drives an Engine with concurrent
// readers and a background writer for throughput/latency measurement.
//
// # Replication
//
// A durable primary additionally serves its change log (HandlerOptions.Repl):
// GET /repl/checkpoint returns the newest sealed checkpoint and
// GET /repl/stream?from=N long-polls CRC-framed commit records. NewReplica
// runs the follower side — it restores from the checkpoint, replays the
// stream through the apply loop as replication steps (one sealed epoch per
// record, so follower reads are the same wait-free snapshot reads), and
// reconnects with jittered backoff, re-syncing from a fresh checkpoint on a
// generation gap or a 410. A follower engine refuses writes with
// ErrReadOnlyReplica, which HTTP maps to 421 Misdirected Request carrying
// the primary's address (X-Xview-Primary header + "primary" body field);
// LoadGen.Lookup follows that redirect once per attempt. Readiness composes:
// with HandlerOptions.Follow set, /healthz (and a Gate) answers
// 503 "following" until the replica is within WithFollowWatermark
// generations of the primary's durable watermark, and GET /repl/info
// reports either side's position for xviewctl repl status.
//
// Registry hosts many named views in one process behind /v/{name}/...,
// each an independent Gate with its own engine, writer loop and private
// metric registry (HandlerOptions.PrivateMetricsOnly): /views lists the
// tenants, the top-level /healthz aggregates their states, and the
// top-level /metrics serves only the process-wide families.
//
// # Telemetry
//
// Every Engine owns a private obs.Registry (see package rxview/obs): the
// counters, queue-depth gauge and latency histograms its hot paths record
// into, plus a ring-buffer slow log (SetSlowThreshold). The HTTP layer
// scrapes it together with the process-wide registry on GET /metrics
// (Prometheus text) and GET /debug/vars (JSON); GET /debug/slow dumps the
// slow log. Recording sites use only the atomic fast-path obs API — one or
// two atomic operations, nothing on the memo-hit path but counters — so
// instrumentation stays within the repo's ≤3% overhead budget (measured by
// `benchrunner -exp obs`). NewGate wraps a Handler with a readiness
// lifecycle: while the view is still replaying its WAL the gate answers
// 503 with the recovery state, /livez answers 200 throughout, and
// SetReady atomically switches to the real handler.
//
// # Writer annotations
//
// The single-writer contract is machine-checked by the xviewlint suite
// (internal/lint, run via `go run ./cmd/xviewlint ./...` or as a go vet
// vettool). Four comment directives drive its singlewriter and obshotpath
// analyzers:
//
//	// xviewlint:writer-only   on a struct field: the field may be
//	                           written only from the writer call graph
//	                           (reads are unrestricted — that is the
//	                           point of the architecture)
//	// xviewlint:writer-loop   on a function: a writer-graph root — the
//	                           apply loop itself (Engine.run)
//	// xviewlint:writer-init   on a function: a constructor that runs
//	                           before the loop exists (New)
//	// xviewlint:hot-path      on a function: a latency-critical root
//	                           outside the writer graph (Engine.Query);
//	                           its call graph may record telemetry only
//	                           through the atomic fast-path obs API,
//	                           never the locked Gather/snapshot side
//
// The writer call graph is the transitive closure of intra-package calls
// from the writer-loop and writer-init roots. Engine.view carries
// writer-only: after New hands the view to the loop, any write to the
// field outside run's call graph is a finding. Independently, a value
// obtained from an atomic.Pointer Load (a published epoch) is flagged if
// anything is stored through it — snapshots are immutable once published.
//
// A directive is a statement of architecture, not a suppression: adding
// one widens what the analyzer accepts, so new annotations get the same
// review scrutiny as a lock-ordering change. Deliberate per-line
// exceptions use the //lint:ignore grammar described in the repository
// README ("Static analysis"), which requires a justification.
package server
