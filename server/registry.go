package server

// Multi-tenant hosting. A Registry mounts many named views in one process,
// each behind its own Gate — one writer loop, one data directory, and one
// private metric registry per view — and routes /v/{name}/... to the right
// one. Isolation is the point: a view's /metrics scrape shows only its own
// engine families (HandlerOptions.PrivateMetricsOnly), its generation
// counter is its own, and an overloaded or degraded tenant answers its own
// 503s without touching its neighbours. The registry's top-level endpoints
// answer for the process as a whole: /views lists every tenant with its
// state, /healthz aggregates readiness (ready only when every view is),
// /livez is plain process liveness, and /metrics serves the process-wide
// obs.Default families shared by all tenants.

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"rxview/obs"
)

// Registry routes HTTP traffic to named views. Safe for concurrent use;
// Add may be called while serving.
type Registry struct {
	mu    sync.Mutex
	views map[string]*Gate

	mux *http.ServeMux
}

// NewRegistry returns an empty registry ready to serve; views are attached
// with Add.
func NewRegistry() *Registry {
	reg := &Registry{views: make(map[string]*Gate), mux: http.NewServeMux()}
	reg.mux.HandleFunc("GET /views", reg.viewsIndex)
	reg.mux.HandleFunc("GET /livez", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, livenessResponse{OK: true})
	})
	reg.mux.HandleFunc("GET /healthz", reg.healthz)
	reg.mux.HandleFunc("GET /metrics", reg.metrics)
	reg.mux.HandleFunc("/v/{name}/{rest...}", reg.route)
	return reg
}

// Add mounts a view's gate under /v/{name}/. The name becomes a path
// segment, so it must be non-empty and slash-free; duplicate names are an
// error (a tenant cannot be silently replaced while serving).
func (reg *Registry) Add(name string, g *Gate) error {
	if name == "" || strings.ContainsAny(name, "/ ") {
		return fmt.Errorf("server: view name %q must be non-empty with no slash or space", name)
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if _, dup := reg.views[name]; dup {
		return fmt.Errorf("server: view %q already registered", name)
	}
	reg.views[name] = g
	return nil
}

// Gate returns the named view's gate, or nil.
func (reg *Registry) Gate(name string) *Gate {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	return reg.views[name]
}

// Names returns the registered view names, sorted.
func (reg *Registry) Names() []string {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	names := make([]string, 0, len(reg.views))
	for name := range reg.views {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ServeHTTP implements http.Handler.
func (reg *Registry) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	reg.mux.ServeHTTP(w, r)
}

// route strips the /v/{name} prefix and hands the request to that view's
// gate, so every per-view endpoint (/query, /healthz, /repl/stream, ...)
// works unchanged under its mount point.
func (reg *Registry) route(w http.ResponseWriter, r *http.Request) {
	g := reg.Gate(r.PathValue("name"))
	if g == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("server: no view %q", r.PathValue("name")), nil)
		return
	}
	r2 := r.Clone(r.Context())
	r2.URL.Path = "/" + r.PathValue("rest")
	r2.URL.RawPath = ""
	g.ServeHTTP(w, r2)
}

// viewEntry is one row of GET /views.
type viewEntry struct {
	Name       string `json:"name"`
	State      string `json:"state"`
	Generation uint64 `json:"generation"`
}

func (reg *Registry) entries() []viewEntry {
	names := reg.Names()
	out := make([]viewEntry, 0, len(names))
	for _, name := range names {
		g := reg.Gate(name)
		ent := viewEntry{Name: name, State: g.State()}
		if e := g.engine(); e != nil {
			ent.Generation = e.Generation()
		}
		out = append(out, ent)
	}
	return out
}

func (reg *Registry) viewsIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Views []viewEntry `json:"views"`
	}{Views: reg.entries()})
}

// healthz aggregates tenant readiness: 200 only when every registered view
// is ready, else 503 with the per-view states so an operator sees which
// tenant is still loading, degraded, or catching up.
func (reg *Registry) healthz(w http.ResponseWriter, r *http.Request) {
	entries := reg.entries()
	ok := true
	for _, ent := range entries {
		if ent.State != "ready" {
			ok = false
		}
	}
	status := http.StatusOK
	if !ok {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, struct {
		OK    bool        `json:"ok"`
		Views []viewEntry `json:"views"`
	}{OK: ok, Views: entries})
}

// metrics serves only the process-wide obs.Default families here; each
// tenant's engine families live at /v/{name}/metrics, scraped per-view.
func (reg *Registry) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WritePrometheus(w, obs.Default())
}
