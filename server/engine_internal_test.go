package server

// White-box tests of the apply loop's coalescing machinery: processRun and
// gather are driven directly with crafted request slices on an engine
// built WITHOUT its loop goroutine, which makes the mid-batch rejection
// and queued-cancellation paths deterministic (a live loop would race the
// test for the queue). The test goroutine plays the role of the single
// writer.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rxview"
)

// newLooplessEngine builds an Engine whose apply loop never starts: the
// test drives gather/processRun/publish itself.
func newLooplessEngine(t *testing.T, opts ...rxview.Option) *Engine {
	t.Helper()
	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		t.Fatal(err)
	}
	view, err := rxview.Open(atg, db, opts...)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{
		view: view,
		cfg:  config{queue: 256, maxCoalesce: 64, memoCap: 256},
		reqs: make(chan *request, 256),
		met:  newEngineMetrics(),
	}
	e.ep.Store(&epoch{sn: view.Snapshot(), memo: newResultMemo(256)})
	return e
}

func mkReq(ctx context.Context, u rxview.Update) *request {
	return &request{ctx: ctx, u: u, done: make(chan result, 1)}
}

func take(t *testing.T, r *request) result {
	t.Helper()
	select {
	case res := <-r.done:
		return res
	case <-time.After(10 * time.Second):
		t.Fatalf("no result delivered for %s", r.u)
		return result{}
	}
}

func studentInsert(key string) rxview.Update {
	return rxview.Insert(`//course[cno="CS650"]/takenBy`, "student", rxview.Str(key), rxview.Str("T"))
}

// TestProcessRunMidRejection: a side-effecting member in the middle of a
// coalesced run fails alone — the members before it stay applied and the
// members after it are re-applied, exactly as if each had been a lone
// Apply. This extends View.Batch's prefix semantics to independent
// submissions.
func TestProcessRunMidRejection(t *testing.T) {
	ctx := context.Background()
	e := newLooplessEngine(t) // no forcing: the shared insert must fail
	shared := rxview.Insert(`course[cno="CS650"]//course[cno="CS320"]/prereq`,
		"course", rxview.Str("CS777"), rxview.Str("Sharing"))

	r1 := mkReq(ctx, studentInsert("SR1"))
	r2 := mkReq(ctx, shared)
	r3 := mkReq(ctx, studentInsert("SR3"))
	e.processRun([]*request{r1, r2, r3})

	if res := take(t, r1); res.err != nil || !res.rep.Applied {
		t.Errorf("first member: applied=%v err=%v, want applied", res.rep != nil && res.rep.Applied, res.err)
	}
	if res := take(t, r2); !errors.Is(res.err, rxview.ErrSideEffect) {
		t.Errorf("side-effecting member err = %v, want ErrSideEffect", res.err)
	} else if res.rep == nil || res.rep.Applied {
		t.Errorf("side-effecting member report = %+v, want unapplied", res.rep)
	}
	if res := take(t, r3); res.err != nil || !res.rep.Applied {
		t.Errorf("member after the rejection: applied=%v err=%v, want re-applied",
			res.rep != nil && res.rep.Applied, res.err)
	}

	e.publish()
	for key, want := range map[string]int{"SR1": 1, "SR3": 1} {
		if res, _ := e.Query(ctx, fmt.Sprintf(`//student[ssn=%q]`, key)); len(res.Nodes) != want {
			t.Errorf("student %s: %d nodes, want %d", key, len(res.Nodes), want)
		}
	}
	if res, _ := e.Query(ctx, `//course[cno="CS777"]`); len(res.Nodes) != 0 {
		t.Error("rejected member's subtree is visible")
	}
	// Each update is tallied once, however many retry rounds it rides
	// through; the re-applied member finished alone (Apply path), so one
	// Batch call absorbed all three.
	if runs, upds := e.met.coalRuns.Value(), e.met.coalUpds.Value(); runs != 1 || upds != 3 {
		t.Errorf("coalescing counters after retried run: runs=%d upds=%d, want 1/3", runs, upds)
	}
}

// TestProcessRunCanceledQueuedMember: a member whose context is canceled
// before the run starts is skipped up front — it reports context.Canceled,
// is guaranteed unapplied, and the surviving members still coalesce.
func TestProcessRunCanceledQueuedMember(t *testing.T) {
	ctx := context.Background()
	e := newLooplessEngine(t, rxview.WithForceSideEffects())
	canceled, cancel := context.WithCancel(ctx)
	cancel()

	r1 := mkReq(ctx, studentInsert("SC1"))
	r2 := mkReq(canceled, studentInsert("SC2"))
	r3 := mkReq(ctx, studentInsert("SC3"))
	e.processRun([]*request{r1, r2, r3})

	if res := take(t, r2); !errors.Is(res.err, context.Canceled) {
		t.Errorf("canceled member err = %v, want context.Canceled", res.err)
	} else if res.rep == nil || res.rep.Applied {
		t.Errorf("canceled member report = %+v, want unapplied", res.rep)
	}
	for _, r := range []*request{r1, r3} {
		if res := take(t, r); res.err != nil || !res.rep.Applied {
			t.Errorf("live member %s: applied=%v err=%v", r.u, res.rep != nil && res.rep.Applied, res.err)
		}
	}

	e.publish()
	if res, _ := e.Query(ctx, `//student[ssn="SC2"]`); len(res.Nodes) != 0 {
		t.Error("canceled member was applied")
	}
	if res, _ := e.Query(ctx, `//student[ssn="SC1"]`); len(res.Nodes) != 1 {
		t.Error("surviving members did not apply")
	}
}

// closeCtx is a context whose Done channel the test closes by hand —
// a deterministic hook to cancel one member while the coalesced run is
// mid-flight.
type closeCtx struct {
	context.Context
	done chan struct{}
	once sync.Once
}

func newCloseCtx() *closeCtx {
	return &closeCtx{Context: context.Background(), done: make(chan struct{})}
}
func (c *closeCtx) close()                { c.once.Do(func() { close(c.done) }) }
func (c *closeCtx) Done() <-chan struct{} { return c.done }
func (c *closeCtx) Err() error {
	select {
	case <-c.done:
		return context.Canceled
	default:
		return nil
	}
}

// TestProcessRunInFlightCancelOfAppliedMember cancels member A's context
// while the run is already past A (the side-effect policy consulted for
// member B is the deterministic mid-run hook). Whichever way the shared run
// context's abort lands — before or after B's own phase checks — the
// outcome must converge: A and B both report applied, nothing is lost, and
// the canceled context never aborts an innocent member permanently.
func TestProcessRunInFlightCancelOfAppliedMember(t *testing.T) {
	ctx := context.Background()
	actx := newCloseCtx()
	e := newLooplessEngine(t, rxview.WithSideEffectPolicy(func(rxview.SideEffectInfo) rxview.Decision {
		actx.close() // fires while B is mid-pipeline, after A applied
		return rxview.ApplyEverywhere
	}))

	ra := mkReq(actx, studentInsert("SF1"))
	rb := mkReq(ctx, rxview.Insert(`course[cno="CS650"]//course[cno="CS320"]/prereq`,
		"course", rxview.Str("CS778"), rxview.Str("InFlight")))
	e.processRun([]*request{ra, rb})

	if res := take(t, ra); res.err != nil || !res.rep.Applied {
		t.Errorf("member A: applied=%v err=%v, want applied before its cancellation", res.rep != nil && res.rep.Applied, res.err)
	}
	if res := take(t, rb); res.err != nil || !res.rep.Applied {
		t.Errorf("member B: applied=%v err=%v, want applied despite A's cancellation", res.rep != nil && res.rep.Applied, res.err)
	}

	e.publish()
	if res, _ := e.Query(ctx, `//course[cno="CS778"]`); len(res.Nodes) == 0 {
		t.Error("member B's subtree missing")
	}
	if res, _ := e.Query(ctx, `//student[ssn="SF1"]`); len(res.Nodes) != 1 {
		t.Error("member A's subtree missing")
	}
}

// TestGatherStopsAtDeleteAndCap verifies the run-assembly rules: deletions
// and client batches break a run (returned as carry), and the coalescing
// cap bounds it.
func TestGatherStopsAtDeleteAndCap(t *testing.T) {
	e := newLooplessEngine(t, rxview.WithForceSideEffects())
	e.cfg.maxCoalesce = 3
	ctx := context.Background()

	// Fill the queue directly (there is no loop to consume it).
	ins := func(i int) *request { return mkReq(ctx, studentInsert(fmt.Sprintf("SG%d", i))) }
	del := mkReq(ctx, rxview.Delete(`//student[ssn="SG0"]`))
	q := []*request{ins(1), del, ins(2), ins(3), ins(4), ins(5)}
	for _, r := range q[1:] {
		e.reqs <- r
	}

	run, carry := e.gather(q[0])
	if len(run) != 1 || carry != del {
		t.Fatalf("gather over [ins del ...]: run=%d carry=%v, want 1-run with the delete as carry", len(run), carry)
	}
	run, carry = e.gather(<-e.reqs)
	if len(run) != 3 || carry != nil {
		t.Fatalf("gather at cap 3: run=%d carry=%v", len(run), carry)
	}
	// Drain what's left so Close doesn't process stale requests.
	for len(e.reqs) > 0 {
		<-e.reqs
	}

	// An atomic group must break a run exactly like a batch or deletion —
	// coalescing it would apply its zero-value update and drop the group.
	txReq := &request{ctx: ctx, tx: []rxview.Update{studentInsert("SGTX")}, done: make(chan result, 1)}
	e.reqs <- txReq
	e.reqs <- ins(6)
	run, carry = e.gather(ins(0))
	if len(run) != 1 || carry != txReq {
		t.Fatalf("gather over [ins tx ins]: run=%d carry=%v, want 1-run with the tx as carry", len(run), carry)
	}
	for len(e.reqs) > 0 {
		<-e.reqs
	}
}
