package server_test

// The serving layer over a durable view: a verdict returned by the engine
// implies the commit is already in the log, so an abrupt death after any
// acknowledged update loses nothing.

import (
	"context"
	"testing"

	"rxview"
	"rxview/server"
)

func TestEngineCommitsAreDurableBeforeVerdict(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		t.Fatal(err)
	}
	view, err := rxview.Open(atg, db, rxview.WithDurability(dir), rxview.WithFsync(rxview.FsyncOff))
	if err != nil {
		t.Fatal(err)
	}
	eng := server.New(view)

	if _, err := eng.Update(ctx,
		rxview.Insert(`.`, "course", rxview.Str("CS850"), rxview.Str("Served"))); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Batch(ctx,
		rxview.Insert(`//course[cno="CS850"]/takenBy`, "student", rxview.Str("S85"), rxview.Str("Eve")),
		rxview.Insert(`//course[cno="CS850"]/takenBy`, "student", rxview.Str("S86"), rxview.Str("Fay")),
	); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Tx(ctx,
		rxview.Insert(`.`, "course", rxview.Str("CS851"), rxview.Str("Grouped")),
		rxview.Insert(`//course[cno="CS851"]/prereq`, "course", rxview.Str("CS852"), rxview.Str("Before")),
	); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(ctx, `//course[cno="CS850"]//student`)
	if err != nil {
		t.Fatal(err)
	}
	want := render(res.Nodes)
	wantGen := eng.Generation()
	eng.Close()
	// No view.Close(): this is the abrupt-death path — every acknowledged
	// verdict must already be in the log.

	atg2, db2, err := rxview.NewRegistrar()
	if err != nil {
		t.Fatal(err)
	}
	view2, err := rxview.Open(atg2, db2, rxview.WithDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer view2.Close()
	if view2.Generation() != wantGen {
		t.Fatalf("recovered generation %d, want %d", view2.Generation(), wantGen)
	}
	eng2 := server.New(view2)
	defer eng2.Close()
	res, err = eng2.Query(ctx, `//course[cno="CS850"]//student`)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(res.Nodes); got != want {
		t.Fatalf("recovered query result %q, want %q", got, want)
	}
	if err := view2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
