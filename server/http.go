package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"rxview"
)

// HandlerOptions configures the HTTP/JSON surface.
type HandlerOptions struct {
	// Timeout bounds each request's context (queue wait included for
	// writes). Zero means no per-request timeout. Like View.Query, a
	// query's XPath evaluation itself is not preemptible — the deadline is
	// observed at entry and, for writes, between the pipeline's phases.
	Timeout time.Duration
	// MaxBody bounds request bodies in bytes. Zero means 1 MiB.
	MaxBody int64
}

// NewHandler exposes an Engine over HTTP/JSON:
//
//	POST /query   {"path": "//course"}                 → nodes + generation
//	POST /update  {"kind":"insert","type":"student",
//	               "values":["S1","Ann"],
//	               "path":"//course/takenBy"}          → report
//	POST /batch   {"updates":[...]}                    → reports (prefix
//	                                                      semantics)
//	POST /tx      {"updates":[...]}                    → reports (atomic:
//	                                                      all-or-nothing,
//	                                                      one generation;
//	                                                      409 on rejection)
//	GET  /stats                                        → serving statistics
//	GET  /healthz                                      → liveness + epoch
//
// The handler is the single dispatch path shared by the xviewd daemon and
// xviewctl -serve. Reads are served from the published snapshot and never
// wait on writes; writes go through the apply loop.
func NewHandler(e *Engine, opts HandlerOptions) http.Handler {
	if opts.MaxBody <= 0 {
		opts.MaxBody = 1 << 20
	}
	h := &handler{e: e, opts: opts}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", h.query)
	mux.HandleFunc("POST /update", h.update)
	mux.HandleFunc("POST /batch", h.batch)
	mux.HandleFunc("POST /tx", h.tx)
	mux.HandleFunc("GET /stats", h.stats)
	mux.HandleFunc("GET /healthz", h.healthz)
	return mux
}

type handler struct {
	e    *Engine
	opts HandlerOptions
}

// requestCtx applies the per-request timeout.
func (h *handler) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if h.opts.Timeout > 0 {
		return context.WithTimeout(r.Context(), h.opts.Timeout)
	}
	return r.Context(), func() {}
}

func (h *handler) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, h.opts.MaxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge // split the batch, don't fix the JSON
		}
		writeError(w, status, fmt.Errorf("decoding request: %w", err), nil)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorResponse struct {
	Error   string        `json:"error"`
	Reports []*reportJSON `json:"reports,omitempty"`
}

// statusOf maps the public error taxonomy onto HTTP statuses.
func statusOf(err error) int {
	switch {
	case errors.Is(err, rxview.ErrParse):
		return http.StatusBadRequest
	case errors.Is(err, rxview.ErrSideEffect):
		return http.StatusConflict
	case errors.Is(err, rxview.ErrNotUpdatable):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeError(w http.ResponseWriter, status int, err error, reps []*rxview.Report) {
	writeJSON(w, status, errorResponse{Error: err.Error(), Reports: reportsJSON(reps)})
}

type nodeJSON struct {
	Type string `json:"type"`
	Attr string `json:"attr"`
	Text string `json:"text,omitempty"`
}

type queryRequest struct {
	Path string `json:"path"`
}

type queryResponse struct {
	Generation uint64     `json:"generation"`
	Count      int        `json:"count"`
	Nodes      []nodeJSON `json:"nodes"`
}

func (h *handler) query(w http.ResponseWriter, r *http.Request) {
	var in queryRequest
	if !h.decode(w, r, &in) {
		return
	}
	ctx, cancel := h.requestCtx(r)
	defer cancel()
	res, err := h.e.Query(ctx, in.Path)
	if err != nil {
		writeError(w, statusOf(err), err, nil)
		return
	}
	out := queryResponse{Generation: res.Generation, Count: len(res.Nodes), Nodes: make([]nodeJSON, len(res.Nodes))}
	for i, n := range res.Nodes {
		out.Nodes[i] = nodeJSON{Type: n.Type, Attr: n.Attr, Text: n.Text}
	}
	writeJSON(w, http.StatusOK, out)
}

// updateJSON is the wire form of one update. Values are the element type's
// attribute fields in ATG declaration order; JSON strings, integral
// numbers, booleans and null map onto the view's value kinds.
type updateJSON struct {
	Kind   string `json:"kind"` // "insert" | "delete"
	Path   string `json:"path"`
	Type   string `json:"type,omitempty"`
	Values []any  `json:"values,omitempty"`
}

func (u updateJSON) compile() (rxview.Update, error) {
	switch u.Kind {
	case "delete":
		return rxview.Delete(u.Path), nil
	case "insert":
		vals := make([]rxview.Value, len(u.Values))
		for i, raw := range u.Values {
			v, err := valueOf(raw)
			if err != nil {
				return rxview.Update{}, fmt.Errorf("values[%d]: %w", i, err)
			}
			vals[i] = v
		}
		return rxview.Insert(u.Path, u.Type, vals...), nil
	default:
		return rxview.Update{}, fmt.Errorf("unknown update kind %q (want insert or delete)", u.Kind)
	}
}

func valueOf(raw any) (rxview.Value, error) {
	switch v := raw.(type) {
	case nil:
		return rxview.Null(), nil
	case string:
		return rxview.Str(v), nil
	case bool:
		return rxview.Bool(v), nil
	case float64:
		if v != math.Trunc(v) || math.Abs(v) >= 1<<53 {
			return rxview.Value{}, fmt.Errorf("number %v is not an exact integer", v)
		}
		return rxview.Int(int64(v)), nil
	default:
		return rxview.Value{}, fmt.Errorf("unsupported value type %T", raw)
	}
}

type reportJSON struct {
	Op          string   `json:"op"`
	Applied     bool     `json:"applied"`
	Targets     int      `json:"targets"`
	Edges       int      `json:"edges"`
	SideEffects bool     `json:"side_effects"`
	DVInserts   int      `json:"dv_inserts"`
	DVDeletes   int      `json:"dv_deletes"`
	Removed     int      `json:"removed"`
	Changes     []string `json:"changes,omitempty"`
	TotalNS     int64    `json:"total_ns"`
}

func reportOf(rep *rxview.Report) *reportJSON {
	if rep == nil {
		return nil
	}
	out := &reportJSON{
		Op:          rep.Op,
		Applied:     rep.Applied,
		Targets:     rep.Targets,
		Edges:       rep.Edges,
		SideEffects: rep.SideEffects,
		DVInserts:   rep.DVInserts,
		DVDeletes:   rep.DVDeletes,
		Removed:     rep.Removed,
		TotalNS:     rep.Timings.Total().Nanoseconds(),
	}
	for _, m := range rep.Changes {
		out.Changes = append(out.Changes, m.String())
	}
	return out
}

func reportsJSON(reps []*rxview.Report) []*reportJSON {
	if reps == nil {
		return nil
	}
	out := make([]*reportJSON, len(reps))
	for i, rep := range reps {
		out[i] = reportOf(rep)
	}
	return out
}

type updateResponse struct {
	Generation uint64      `json:"generation"`
	Report     *reportJSON `json:"report"`
}

func (h *handler) update(w http.ResponseWriter, r *http.Request) {
	var in updateJSON
	if !h.decode(w, r, &in) {
		return
	}
	u, err := in.compile()
	if err != nil {
		writeError(w, http.StatusBadRequest, err, nil)
		return
	}
	ctx, cancel := h.requestCtx(r)
	defer cancel()
	rep, gen, err := h.e.updateWithGen(ctx, u)
	if err != nil {
		var reps []*rxview.Report
		if rep != nil {
			reps = []*rxview.Report{rep}
		}
		writeError(w, statusOf(err), err, reps)
		return
	}
	// gen was stamped by the apply loop with this write's verdict, so it
	// cannot misattribute other clients' later writes.
	writeJSON(w, http.StatusOK, updateResponse{Generation: gen, Report: reportOf(rep)})
}

type batchRequest struct {
	Updates []updateJSON `json:"updates"`
}

type batchResponse struct {
	Generation uint64        `json:"generation"`
	Reports    []*reportJSON `json:"reports"`
}

func (h *handler) batch(w http.ResponseWriter, r *http.Request) {
	var in batchRequest
	if !h.decode(w, r, &in) {
		return
	}
	updates := make([]rxview.Update, len(in.Updates))
	for i, uj := range in.Updates {
		u, err := uj.compile()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("updates[%d]: %w", i, err), nil)
			return
		}
		updates[i] = u
	}
	ctx, cancel := h.requestCtx(r)
	defer cancel()
	reps, gen, err := h.e.batchWithGen(ctx, updates...)
	if err != nil {
		// Prefix semantics: the reports cover what ran; surface them with
		// the error so the client knows exactly how far the batch got.
		writeError(w, statusOf(err), err, reps)
		return
	}
	writeJSON(w, http.StatusOK, batchResponse{Generation: gen, Reports: reportsJSON(reps)})
}

// txStatusOf maps an atomic group's rejection onto HTTP statuses: any
// update-level rejection that makes the combined effect unachievable — an
// XML side effect or an untranslatable ΔV — is a group conflict (409, where
// /update distinguishes 409 from 422: the group-level question is "can
// these apply together atomically", and the answer was no). Malformed
// updates stay 400, timeouts and shutdown keep their transport statuses.
func txStatusOf(err error) int {
	if errors.Is(err, rxview.ErrSideEffect) || errors.Is(err, rxview.ErrNotUpdatable) {
		return http.StatusConflict
	}
	return statusOf(err)
}

// tx applies an atomic group: all updates or none, one generation step, one
// published epoch. The response mirrors /batch's shape; on rejection the
// reports still describe every staged update (ending with the rejected
// one), but — unlike /batch — nothing was applied.
func (h *handler) tx(w http.ResponseWriter, r *http.Request) {
	var in batchRequest
	if !h.decode(w, r, &in) {
		return
	}
	updates := make([]rxview.Update, len(in.Updates))
	for i, uj := range in.Updates {
		u, err := uj.compile()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("updates[%d]: %w", i, err), nil)
			return
		}
		updates[i] = u
	}
	ctx, cancel := h.requestCtx(r)
	defer cancel()
	reps, gen, err := h.e.txWithGen(ctx, updates...)
	if err != nil {
		writeError(w, txStatusOf(err), err, reps)
		return
	}
	writeJSON(w, http.StatusOK, batchResponse{Generation: gen, Reports: reportsJSON(reps)})
}

func (h *handler) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.e.Stats())
}

type healthResponse struct {
	OK         bool   `json:"ok"`
	Generation uint64 `json:"generation"`
	QueueDepth int64  `json:"queue_depth"`
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		OK:         true,
		Generation: h.e.Generation(),
		QueueDepth: h.e.depth.Load(),
	})
}

// ListenAndServe runs the HTTP API on addr until ctx is canceled, then
// shuts down gracefully (draining in-flight requests) and closes the
// engine. It is the lifecycle shared by cmd/xviewd and xviewctl -serve.
func ListenAndServe(ctx context.Context, addr string, e *Engine, opts HandlerOptions) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           NewHandler(e, opts),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		e.Close()
		return err
	case <-ctx.Done():
	}
	//lint:ignore xviewlint/ctxflow graceful shutdown starts when the serve ctx is already canceled; its deadline must be independent of it
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := srv.Shutdown(shutCtx)
	e.Close()
	if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) && err == nil {
		err = serveErr
	}
	return err
}
