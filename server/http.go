package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"rxview"
	"rxview/obs"
)

// HandlerOptions configures the HTTP/JSON surface.
type HandlerOptions struct {
	// Timeout bounds each request's context (queue wait included for
	// writes). Zero means no per-request timeout. Like View.Query, a
	// query's XPath evaluation itself is not preemptible — the deadline is
	// observed at entry and, for writes, between the pipeline's phases.
	Timeout time.Duration
	// MaxBody bounds request bodies in bytes. Zero means 1 MiB.
	MaxBody int64
	// Checkpointing, when non-nil, reports whether a checkpoint is being
	// written right now (View.Checkpointing of a durable view). While true,
	// /healthz answers 503 so load balancers drain the node for the stall;
	// /livez is unaffected.
	Checkpointing func() bool
	// Repl, when non-nil, serves the primary-side replication endpoints:
	// GET /repl/checkpoint (the newest sealed checkpoint, octet-stream,
	// generation in X-Xview-Generation), GET /repl/stream?from=G (framed
	// commit records of generations > G, chunked; 410 when G predates the
	// retained log) and GET /repl/info.
	Repl *rxview.ReplSource
	// StreamWindow bounds how long one caught-up /repl/stream poll is held
	// open waiting for new commits before recycling. Zero means 25s.
	StreamWindow time.Duration
	// Follow, when non-nil, marks a follower node (server.Replica.Status):
	// /healthz reports "following" (503) until the lag is inside the follow
	// watermark, and GET /repl/info reports the follower's position.
	Follow func() FollowStatus
	// PrivateMetricsOnly restricts /metrics and /debug/vars to the engine's
	// own registry, excluding the process-wide obs.Default families. The
	// multi-tenant Registry sets it so one view's scrape never shows another
	// view's traffic; the process-wide families stay available at the
	// registry's top-level /metrics.
	PrivateMetricsOnly bool
}

// NewHandler exposes an Engine over HTTP/JSON:
//
//	POST /query   {"path": "//course"}                 → nodes + generation
//	POST /update  {"kind":"insert","type":"student",
//	               "values":["S1","Ann"],
//	               "path":"//course/takenBy"}          → report
//	POST /batch   {"updates":[...]}                    → reports (prefix
//	                                                      semantics)
//	POST /tx      {"updates":[...]}                    → reports (atomic:
//	                                                      all-or-nothing,
//	                                                      one generation;
//	                                                      409 on rejection)
//	GET  /stats                                        → serving statistics
//	GET  /healthz                                      → readiness (503 while
//	                                                      checkpointing)
//	GET  /livez                                        → liveness, always 200
//	GET  /metrics                                      → Prometheus text
//	                                                      exposition
//	GET  /debug/vars                                   → metrics as JSON
//	GET  /debug/slow                                   → slow-query/commit log
//
// The handler is the single dispatch path shared by the xviewd daemon and
// xviewctl -serve. Reads are served from the published snapshot and never
// wait on writes; writes go through the apply loop. /metrics scrapes the
// engine's private registry merged with the process-wide obs.Default
// registry (pipeline, WAL and path-cache families).
func NewHandler(e *Engine, opts HandlerOptions) http.Handler {
	if opts.MaxBody <= 0 {
		opts.MaxBody = 1 << 20
	}
	h := &handler{e: e, opts: opts}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", h.query)
	mux.HandleFunc("POST /update", h.update)
	mux.HandleFunc("POST /batch", h.batch)
	mux.HandleFunc("POST /tx", h.tx)
	mux.HandleFunc("GET /stats", h.stats)
	mux.HandleFunc("GET /healthz", h.healthz)
	mux.HandleFunc("GET /livez", h.livez)
	mux.HandleFunc("GET /metrics", h.metrics)
	mux.HandleFunc("GET /debug/vars", h.debugVars)
	mux.HandleFunc("GET /debug/slow", h.debugSlow)
	if opts.Repl != nil {
		mux.HandleFunc("GET /repl/checkpoint", h.replCheckpoint)
		mux.HandleFunc("GET /repl/stream", h.replStream)
	}
	if opts.Repl != nil || opts.Follow != nil {
		mux.HandleFunc("GET /repl/info", h.replInfo)
	}
	return mux
}

type handler struct {
	e    *Engine
	opts HandlerOptions
}

// requestCtx applies the per-request timeout.
func (h *handler) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if h.opts.Timeout > 0 {
		return context.WithTimeout(r.Context(), h.opts.Timeout)
	}
	return r.Context(), func() {}
}

func (h *handler) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, h.opts.MaxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge // split the batch, don't fix the JSON
		}
		writeError(w, status, fmt.Errorf("decoding request: %w", err), nil)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorResponse struct {
	Error   string        `json:"error"`
	Reports []*reportJSON `json:"reports,omitempty"`
	// RetryAfterMS accompanies 429 responses: the estimated queue drain
	// time in milliseconds — the Retry-After header at sub-second grain.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// Primary accompanies 421 responses from a read-only follower: the
	// advertised primary address to re-aim the write at (also in the
	// X-Xview-Primary header).
	Primary string `json:"primary,omitempty"`
}

// statusOf maps the public error taxonomy onto HTTP statuses.
func statusOf(err error) int {
	switch {
	case errors.Is(err, rxview.ErrParse):
		return http.StatusBadRequest
	case errors.Is(err, rxview.ErrSideEffect):
		return http.StatusConflict
	case errors.Is(err, rxview.ErrNotUpdatable):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrReadOnlyReplica):
		// The write reached a follower: 421 tells the client this node will
		// never serve it; the response advertises the primary to re-aim at.
		return http.StatusMisdirectedRequest
	case errors.Is(err, rxview.ErrDegraded):
		// Writes are refused while degraded; reads keep serving. 503 tells
		// the balancer to route writes elsewhere, and the recovery prober
		// flips the node back automatically.
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeError(w http.ResponseWriter, status int, err error, reps []*rxview.Report) {
	out := errorResponse{Error: err.Error(), Reports: reportsJSON(reps)}
	var oe *OverloadedError
	if errors.As(err, &oe) && oe.RetryAfter > 0 {
		// Retry-After is whole seconds by spec; round up so a client that
		// honors only the header never retries early. The JSON carries the
		// sub-second estimate.
		secs := int64((oe.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		out.RetryAfterMS = oe.RetryAfter.Milliseconds()
		if out.RetryAfterMS == 0 {
			out.RetryAfterMS = 1
		}
	}
	var ro *ReadOnlyReplicaError
	if errors.As(err, &ro) && ro.Primary != "" {
		w.Header().Set("X-Xview-Primary", ro.Primary)
		out.Primary = ro.Primary
	}
	writeJSON(w, status, out)
}

type nodeJSON struct {
	Type string `json:"type"`
	Attr string `json:"attr"`
	Text string `json:"text,omitempty"`
}

type queryRequest struct {
	Path string `json:"path"`
}

type queryResponse struct {
	Generation uint64     `json:"generation"`
	Count      int        `json:"count"`
	Nodes      []nodeJSON `json:"nodes"`
}

func (h *handler) query(w http.ResponseWriter, r *http.Request) {
	var in queryRequest
	if !h.decode(w, r, &in) {
		return
	}
	ctx, cancel := h.requestCtx(r)
	defer cancel()
	res, err := h.e.Query(ctx, in.Path)
	if err != nil {
		writeError(w, statusOf(err), err, nil)
		return
	}
	out := queryResponse{Generation: res.Generation, Count: len(res.Nodes), Nodes: make([]nodeJSON, len(res.Nodes))}
	for i, n := range res.Nodes {
		out.Nodes[i] = nodeJSON{Type: n.Type, Attr: n.Attr, Text: n.Text}
	}
	writeJSON(w, http.StatusOK, out)
}

// updateJSON is the wire form of one update. Values are the element type's
// attribute fields in ATG declaration order; JSON strings, integral
// numbers, booleans and null map onto the view's value kinds.
type updateJSON struct {
	Kind   string `json:"kind"` // "insert" | "delete"
	Path   string `json:"path"`
	Type   string `json:"type,omitempty"`
	Values []any  `json:"values,omitempty"`
}

func (u updateJSON) compile() (rxview.Update, error) {
	switch u.Kind {
	case "delete":
		return rxview.Delete(u.Path), nil
	case "insert":
		vals := make([]rxview.Value, len(u.Values))
		for i, raw := range u.Values {
			v, err := valueOf(raw)
			if err != nil {
				return rxview.Update{}, fmt.Errorf("values[%d]: %w", i, err)
			}
			vals[i] = v
		}
		return rxview.Insert(u.Path, u.Type, vals...), nil
	default:
		return rxview.Update{}, fmt.Errorf("unknown update kind %q (want insert or delete)", u.Kind)
	}
}

func valueOf(raw any) (rxview.Value, error) {
	switch v := raw.(type) {
	case nil:
		return rxview.Null(), nil
	case string:
		return rxview.Str(v), nil
	case bool:
		return rxview.Bool(v), nil
	case float64:
		if v != math.Trunc(v) || math.Abs(v) >= 1<<53 {
			return rxview.Value{}, fmt.Errorf("number %v is not an exact integer", v)
		}
		return rxview.Int(int64(v)), nil
	default:
		return rxview.Value{}, fmt.Errorf("unsupported value type %T", raw)
	}
}

type reportJSON struct {
	Op          string   `json:"op"`
	Applied     bool     `json:"applied"`
	Targets     int      `json:"targets"`
	Edges       int      `json:"edges"`
	SideEffects bool     `json:"side_effects"`
	DVInserts   int      `json:"dv_inserts"`
	DVDeletes   int      `json:"dv_deletes"`
	Removed     int      `json:"removed"`
	Changes     []string `json:"changes,omitempty"`
	TotalNS     int64    `json:"total_ns"`
}

func reportOf(rep *rxview.Report) *reportJSON {
	if rep == nil {
		return nil
	}
	out := &reportJSON{
		Op:          rep.Op,
		Applied:     rep.Applied,
		Targets:     rep.Targets,
		Edges:       rep.Edges,
		SideEffects: rep.SideEffects,
		DVInserts:   rep.DVInserts,
		DVDeletes:   rep.DVDeletes,
		Removed:     rep.Removed,
		TotalNS:     rep.Timings.Total().Nanoseconds(),
	}
	for _, m := range rep.Changes {
		out.Changes = append(out.Changes, m.String())
	}
	return out
}

func reportsJSON(reps []*rxview.Report) []*reportJSON {
	if reps == nil {
		return nil
	}
	out := make([]*reportJSON, len(reps))
	for i, rep := range reps {
		out[i] = reportOf(rep)
	}
	return out
}

type updateResponse struct {
	Generation uint64      `json:"generation"`
	Report     *reportJSON `json:"report"`
}

func (h *handler) update(w http.ResponseWriter, r *http.Request) {
	var in updateJSON
	if !h.decode(w, r, &in) {
		return
	}
	u, err := in.compile()
	if err != nil {
		writeError(w, http.StatusBadRequest, err, nil)
		return
	}
	ctx, cancel := h.requestCtx(r)
	defer cancel()
	rep, gen, err := h.e.updateWithGen(ctx, u)
	if err != nil {
		var reps []*rxview.Report
		if rep != nil {
			reps = []*rxview.Report{rep}
		}
		writeError(w, statusOf(err), err, reps)
		return
	}
	// gen was stamped by the apply loop with this write's verdict, so it
	// cannot misattribute other clients' later writes.
	writeJSON(w, http.StatusOK, updateResponse{Generation: gen, Report: reportOf(rep)})
}

type batchRequest struct {
	Updates []updateJSON `json:"updates"`
}

type batchResponse struct {
	Generation uint64        `json:"generation"`
	Reports    []*reportJSON `json:"reports"`
}

func (h *handler) batch(w http.ResponseWriter, r *http.Request) {
	var in batchRequest
	if !h.decode(w, r, &in) {
		return
	}
	updates := make([]rxview.Update, len(in.Updates))
	for i, uj := range in.Updates {
		u, err := uj.compile()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("updates[%d]: %w", i, err), nil)
			return
		}
		updates[i] = u
	}
	ctx, cancel := h.requestCtx(r)
	defer cancel()
	reps, gen, err := h.e.batchWithGen(ctx, updates...)
	if err != nil {
		// Prefix semantics: the reports cover what ran; surface them with
		// the error so the client knows exactly how far the batch got.
		writeError(w, statusOf(err), err, reps)
		return
	}
	writeJSON(w, http.StatusOK, batchResponse{Generation: gen, Reports: reportsJSON(reps)})
}

// txStatusOf maps an atomic group's rejection onto HTTP statuses: any
// update-level rejection that makes the combined effect unachievable — an
// XML side effect or an untranslatable ΔV — is a group conflict (409, where
// /update distinguishes 409 from 422: the group-level question is "can
// these apply together atomically", and the answer was no). Malformed
// updates stay 400, timeouts and shutdown keep their transport statuses.
func txStatusOf(err error) int {
	if errors.Is(err, rxview.ErrSideEffect) || errors.Is(err, rxview.ErrNotUpdatable) {
		return http.StatusConflict
	}
	return statusOf(err)
}

// tx applies an atomic group: all updates or none, one generation step, one
// published epoch. The response mirrors /batch's shape; on rejection the
// reports still describe every staged update (ending with the rejected
// one), but — unlike /batch — nothing was applied.
func (h *handler) tx(w http.ResponseWriter, r *http.Request) {
	var in batchRequest
	if !h.decode(w, r, &in) {
		return
	}
	updates := make([]rxview.Update, len(in.Updates))
	for i, uj := range in.Updates {
		u, err := uj.compile()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("updates[%d]: %w", i, err), nil)
			return
		}
		updates[i] = u
	}
	ctx, cancel := h.requestCtx(r)
	defer cancel()
	reps, gen, err := h.e.txWithGen(ctx, updates...)
	if err != nil {
		writeError(w, txStatusOf(err), err, reps)
		return
	}
	writeJSON(w, http.StatusOK, batchResponse{Generation: gen, Reports: reportsJSON(reps)})
}

func (h *handler) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.e.Stats())
}

// healthResponse is the readiness verdict: OK false (with a 503) means the
// node should be drained — State says why ("recovering" during boot replay,
// "checkpointing" while the writer is stalled sealing state).
type healthResponse struct {
	OK         bool   `json:"ok"`
	State      string `json:"state"`
	Generation uint64 `json:"generation,omitempty"`
	QueueDepth int64  `json:"queue_depth,omitempty"`
	// Lag is reported on followers: generations behind the primary's
	// durable watermark at probe time.
	Lag uint64 `json:"lag,omitempty"`
}

type livenessResponse struct {
	OK bool `json:"ok"`
}

// healthz is the readiness probe. Liveness is /livez; the two are distinct
// so a balancer can pull a checkpointing (or still-recovering, see Gate)
// node out of rotation without the orchestrator killing the process.
// "degraded" means the log failed and writes are being refused while
// snapshot reads keep serving — the 503 routes writes elsewhere, and the
// recovery prober flips the state back without a restart.
func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	out := healthResponse{
		OK:         true,
		State:      "ready",
		Generation: h.e.Generation(),
		QueueDepth: h.e.met.depth.Value(),
	}
	status := http.StatusOK
	if h.opts.Checkpointing != nil && h.opts.Checkpointing() {
		out.OK, out.State = false, "checkpointing"
		status = http.StatusServiceUnavailable
	}
	if h.e.Degraded() {
		// Takes precedence over "checkpointing": the recovery probe itself
		// checkpoints, and "degraded" is the state that explains why.
		out.OK, out.State = false, "degraded"
		status = http.StatusServiceUnavailable
	}
	if h.opts.Follow != nil {
		// Follower readiness: serve reads only once the replica has restored
		// a checkpoint and closed to within the follow watermark — a balancer
		// should not route to a node still pages behind the primary.
		st := h.opts.Follow()
		out.Lag = st.Lag
		if !st.Following {
			out.OK, out.State = false, "following"
			status = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, status, out)
}

// livez is the liveness probe: the process is up and serving HTTP.
func (h *handler) livez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, livenessResponse{OK: true})
}

// metrics serves the Prometheus text exposition of every registry in the
// process: the engine's own families plus the obs.Default families
// (pipeline phases, transactions, WAL, path cache). Locked snapshot side —
// never called from the hot path.
func (h *handler) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WritePrometheus(w, h.registries()...)
}

// debugVars is the same gather as /metrics rendered as one JSON object —
// for humans with curl and jq, not for scrapers.
func (h *handler) debugVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = obs.WriteVars(w, h.registries()...)
}

// registries picks the scrape set: the engine's private registry, plus the
// process-wide families unless this handler is metric-isolated (one view of
// a multi-tenant Registry).
func (h *handler) registries() []*obs.Registry {
	if h.opts.PrivateMetricsOnly {
		return []*obs.Registry{h.e.Metrics()}
	}
	return []*obs.Registry{h.e.Metrics(), obs.Default()}
}

type slowResponse struct {
	ThresholdNS int64           `json:"threshold_ns"`
	Dropped     uint64          `json:"dropped"`
	Entries     []obs.SlowEntry `json:"entries"`
}

// debugSlow dumps the slow-query/slow-commit ring buffer, newest first.
// Empty until a threshold is configured (xviewd -slow-threshold or
// Engine.SetSlowThreshold).
func (h *handler) debugSlow(w http.ResponseWriter, r *http.Request) {
	entries, dropped := h.e.SlowLog().Entries()
	if entries == nil {
		entries = []obs.SlowEntry{}
	}
	writeJSON(w, http.StatusOK, slowResponse{
		ThresholdNS: h.e.SlowLog().Threshold().Nanoseconds(),
		Dropped:     dropped,
		Entries:     entries,
	})
}

// replCheckpoint serves the newest sealed checkpoint verbatim — the bytes a
// follower feeds to rxview.Replica.Restore. The generation the checkpoint
// seals rides in X-Xview-Generation and the primary's durable watermark in
// X-Xview-Durable, so one fetch tells the follower both where it will start
// and how far behind that start already is.
func (h *handler) replCheckpoint(w http.ResponseWriter, r *http.Request) {
	gen, state, err := h.opts.Repl.CheckpointBytes()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err, nil)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Xview-Generation", strconv.FormatUint(gen, 10))
	w.Header().Set("X-Xview-Durable", strconv.FormatUint(h.opts.Repl.Generation(), 10))
	w.Header().Set("Content-Length", strconv.Itoa(len(state)))
	_, _ = w.Write(state)
}

// replStream long-polls the change log: every commit record with generation
// > from is written as one CRC-framed chunk and flushed immediately, so a
// caught-up follower sees new commits at commit latency. A poll that stays
// idle for the stream window ends with a clean empty 200 — the follower
// reads EOF and reconnects, which bounds how long a dead peer can pin the
// connection. A from that predates the retained log answers 410 Gone: the
// follower must re-fetch /repl/checkpoint.
func (h *handler) replStream(w http.ResponseWriter, r *http.Request) {
	var from uint64
	if s := r.URL.Query().Get("from"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("parsing from=%q: %w", s, err), nil)
			return
		}
		from = v
	}
	window := h.opts.StreamWindow
	if window <= 0 {
		window = 25 * time.Second
	}
	w.Header().Set("X-Xview-Durable", strconv.FormatUint(h.opts.Repl.Generation(), 10))
	flusher, _ := w.(http.Flusher)
	wrote := false
	err := h.opts.Repl.Stream(r.Context(), from, window, func(_ uint64, frame []byte) error {
		if !wrote {
			w.Header().Set("Content-Type", "application/octet-stream")
			w.WriteHeader(http.StatusOK)
			wrote = true
		}
		if _, err := w.Write(frame); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	switch {
	case err == nil:
		// Either frames were streamed or the window elapsed idle; both end
		// the response cleanly and the follower polls again.
	case wrote:
		// Mid-stream failure (peer gone, emit error): the frames already on
		// the wire are CRC-framed and self-delimiting, so just drop the
		// connection — the follower resumes from its last applied generation.
	case errors.Is(err, rxview.ErrReplicaStale):
		writeError(w, http.StatusGone, err, nil)
	default:
		writeError(w, statusOf(err), err, nil)
	}
}

// replInfo reports this node's replication position — the endpoint behind
// `xviewctl repl status`. Primaries answer role "primary" with the durable
// watermark and the oldest streamable generation; followers answer role
// "follower" with the full FollowStatus.
func (h *handler) replInfo(w http.ResponseWriter, r *http.Request) {
	if h.opts.Follow != nil {
		writeJSON(w, http.StatusOK, struct {
			Role string `json:"role"`
			FollowStatus
		}{Role: "follower", FollowStatus: h.opts.Follow()})
		return
	}
	oldest, err := h.opts.Repl.Oldest()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err, nil)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Role       string `json:"role"`
		Generation uint64 `json:"generation"`
		Oldest     uint64 `json:"oldest"`
	}{Role: "primary", Generation: h.opts.Repl.Generation(), Oldest: oldest})
}

// ListenAndServe runs the HTTP API on addr until ctx is canceled, then
// shuts down gracefully (draining in-flight requests) and closes the
// engine. It is the lifecycle shared by cmd/xviewd and xviewctl -serve; a
// process that wants to answer health probes before its view has loaded
// uses ServeGated directly.
func ListenAndServe(ctx context.Context, addr string, e *Engine, opts HandlerOptions) error {
	g := NewGate("starting")
	g.SetReady(e, opts)
	return ServeGated(ctx, addr, g)
}
