package server_test

// Engine-level resilience tests: the chaos soak under concurrent wait-free
// readers (degradation healed by the recovery prober, verdict ledger
// checked against the recovered state), overload shedding while the writer
// is stalled by injected slow I/O, and deadline expiry for requests
// sitting in the apply queue. Fault injection is process-wide, so nothing
// here runs in parallel.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rxview"
	"rxview/server"
)

func resIns(cno string) rxview.Update {
	return rxview.Insert(`.`, "course", rxview.Str(cno), rxview.Str("Resilience"))
}

func mustDurableEngine(t *testing.T, dir string, opts ...server.Option) (*server.Engine, *rxview.View) {
	t.Helper()
	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		t.Fatal(err)
	}
	view, err := rxview.Open(atg, db, rxview.WithDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	return server.New(view, opts...), view
}

// waitReadWrite blocks until the recovery prober has restored read-write
// mode, or fails the test.
func waitReadWrite(t *testing.T, eng *server.Engine) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().Degraded {
		if time.Now().After(deadline) {
			t.Fatal("engine still degraded after 5s; recovery prober did not heal it")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEngineChaosSoak drives a faulted write workload through the engine
// while concurrent readers assert wait-free, generation-monotone serving
// the whole way through — across three separate degradations, each healed
// by the background prober. The per-write ledger is then checked against
// the reopened directory: acknowledged writes present, rejections absent.
func TestEngineChaosSoak(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	eng, view := mustDurableEngine(t, dir,
		server.WithRecoveryBackoff(time.Millisecond, 8*time.Millisecond))
	defer rxview.DisableChaos()

	spec := strings.Join([]string{
		"wal.append:after=5,count=1",
		"wal.fsync:after=11,count=1",
		"wal.disk-full:after=17,count=1",
		"wal.slow-io:latency=1ms,every=6,count=3",
	}, ";")
	if err := rxview.EnableChaos(spec, 21); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	readerErr := make(chan error, 4)
	var readers sync.WaitGroup
	var reads atomic.Int64
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var lastGen uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := eng.Query(ctx, `//course`)
				if err != nil {
					readerErr <- err
					return
				}
				if res.Generation < lastGen {
					readerErr <- fmt.Errorf("generation went backwards: %d after %d", res.Generation, lastGen)
					return
				}
				lastGen = res.Generation
				reads.Add(1)
			}
		}()
	}

	var acked, rejected []string
	for i := 0; i < 40; i++ {
		cno := fmt.Sprintf("CE%03d", i)
		rep, err := eng.Update(ctx, resIns(cno))
		var de *rxview.DegradedError
		switch {
		case err == nil:
			acked = append(acked, cno)
		case errors.As(err, &de) && de.Applied:
			// Indeterminate: in memory but not durable. The prober's
			// recovery checkpoints the in-memory state, so post-recovery
			// this write is expected in the durable record.
			acked = append(acked, cno)
		default:
			if rep != nil && rep.Applied {
				t.Fatalf("write %s: rejected (%v) but report says applied", cno, err)
			}
			rejected = append(rejected, cno)
		}
		if errors.Is(err, rxview.ErrDegraded) {
			waitReadWrite(t, eng)
		}
	}
	close(stop)
	readers.Wait()
	select {
	case err := <-readerErr:
		t.Fatalf("reader: %v", err)
	default:
	}

	waitReadWrite(t, eng)
	if _, err := eng.Update(ctx, resIns("CEFIN")); err != nil {
		t.Fatalf("post-soak write: %v", err)
	}
	acked = append(acked, "CEFIN")

	st := eng.Stats()
	if st.Degraded {
		t.Fatal("engine ends degraded")
	}
	if st.Recoveries == 0 {
		t.Fatal("no recoveries recorded: the fault schedule never degraded the engine")
	}
	if reads.Load() == 0 {
		t.Fatal("readers made no progress during the soak")
	}
	t.Logf("soak: %d acked, %d rejected, %d reads, %d recoveries",
		len(acked), len(rejected), reads.Load(), st.Recoveries)

	rxview.DisableChaos()
	eng.Close()
	if err := view.Close(); err != nil {
		t.Fatalf("view close: %v", err)
	}

	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := rxview.Open(atg, db, rxview.WithDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if err := v2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	for _, cno := range acked {
		nodes, err := v2.Query(ctx, fmt.Sprintf(`//course[cno=%q]`, cno))
		if err != nil {
			t.Fatal(err)
		}
		if len(nodes) != 1 {
			t.Fatalf("acknowledged write %s: %d matches after recovery, want 1", cno, len(nodes))
		}
	}
	for _, cno := range rejected {
		nodes, err := v2.Query(ctx, fmt.Sprintf(`//course[cno=%q]`, cno))
		if err != nil {
			t.Fatal(err)
		}
		if len(nodes) != 0 {
			t.Fatalf("rejected write %s present after recovery", cno)
		}
	}
}

// TestOverloadShedsWhileReadsFlow stalls the apply loop with injected slow
// I/O and floods the queue: excess writes must shed with ErrOverloaded
// carrying a Retry-After estimate, admitted writes must complete within
// the watermark-bounded queue wait, and reads must keep serving the
// published generation throughout.
func TestOverloadShedsWhileReadsFlow(t *testing.T) {
	ctx := context.Background()
	eng, view := mustDurableEngine(t, t.TempDir(),
		server.WithQueueDepth(4), server.WithShedWatermark(3))
	defer rxview.DisableChaos()
	defer view.Close()
	defer eng.Close()

	if err := rxview.EnableChaos("wal.slow-io:latency=40ms,every=1", 3); err != nil {
		t.Fatal(err)
	}
	genBefore := eng.Generation()

	const writers = 12
	var (
		wg             sync.WaitGroup
		applied, shed  atomic.Int64
		retryAfterSeen atomic.Bool
		slowestWrite   atomic.Int64
	)
	writeErr := make(chan error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			_, err := eng.Update(ctx, resIns(fmt.Sprintf("OV%03d", i)))
			d := time.Since(t0)
			for {
				old := slowestWrite.Load()
				if int64(d) <= old || slowestWrite.CompareAndSwap(old, int64(d)) {
					break
				}
			}
			switch {
			case err == nil:
				applied.Add(1)
			case errors.Is(err, server.ErrOverloaded):
				shed.Add(1)
				var oe *server.OverloadedError
				if errors.As(err, &oe) && oe.RetryAfter > 0 {
					retryAfterSeen.Store(true)
				}
			default:
				writeErr <- err
			}
		}(i)
	}

	// Reads while the writer is pinned: wait-free, at a published
	// generation that never regresses below the pre-flood one.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	var readCount int
readLoop:
	for {
		res, err := eng.Query(ctx, `//course`)
		if err != nil {
			t.Fatalf("read during overload: %v", err)
		}
		if res.Generation < genBefore {
			t.Fatalf("read at generation %d, below pre-flood %d", res.Generation, genBefore)
		}
		readCount++
		select {
		case <-done:
			break readLoop
		case <-time.After(2 * time.Millisecond):
		}
	}
	select {
	case err := <-writeErr:
		t.Fatalf("writer: %v", err)
	default:
	}

	if applied.Load() == 0 {
		t.Fatal("no writes applied under overload")
	}
	if shed.Load() == 0 {
		t.Fatal("no writes shed: the watermark never engaged")
	}
	if !retryAfterSeen.Load() {
		t.Fatal("no shed verdict carried a Retry-After estimate")
	}
	if got := eng.Stats().WritesShed; got != uint64(shed.Load()) {
		t.Fatalf("Stats.WritesShed = %d, want %d", got, shed.Load())
	}
	if readCount == 0 {
		t.Fatal("no reads completed during overload")
	}
	// Bounded queue wait: an admitted write sits behind at most the
	// watermark's worth of 40ms appends; far below this generous bound,
	// and crucially not unbounded.
	if d := time.Duration(slowestWrite.Load()); d > 2*time.Second {
		t.Fatalf("slowest write verdict took %v; queue wait is not bounded", d)
	}
	if got, want := eng.Generation(), genBefore+uint64(applied.Load()); got != want {
		t.Fatalf("final generation %d, want %d (pre-flood %d + %d applied)", got, want, genBefore, applied.Load())
	}
}

// TestQueuedDeadlineExpiry pins the apply loop and enqueues an update, a
// batch and an atomic group whose deadlines expire while they sit in the
// queue: each must be skipped with context.DeadlineExceeded, a "canceled
// while queued" verdict, and guaranteed-unapplied reports.
func TestQueuedDeadlineExpiry(t *testing.T) {
	ctx := context.Background()
	eng, view := mustDurableEngine(t, t.TempDir())
	defer rxview.DisableChaos()
	defer view.Close()
	defer eng.Close()

	if err := rxview.EnableChaos("wal.slow-io:latency=60ms,every=1", 5); err != nil {
		t.Fatal(err)
	}

	// The pin: a deadline-free write the loop picks up immediately and
	// stalls on for 60ms.
	pinDone := make(chan error, 1)
	go func() {
		_, err := eng.Update(ctx, resIns("QD000"))
		pinDone <- err
	}()
	time.Sleep(5 * time.Millisecond) // the pin is in flight, the queue is empty

	type verdict struct {
		kind string
		reps []*rxview.Report
		err  error
	}
	verdicts := make(chan verdict, 3)
	short := func() (context.Context, context.CancelFunc) {
		return context.WithTimeout(ctx, 20*time.Millisecond)
	}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		c, cancel := short()
		defer cancel()
		rep, err := eng.Update(c, resIns("QD001"))
		verdicts <- verdict{"update", []*rxview.Report{rep}, err}
	}()
	go func() {
		defer wg.Done()
		c, cancel := short()
		defer cancel()
		reps, err := eng.Batch(c, resIns("QD002"), resIns("QD003"))
		verdicts <- verdict{"batch", reps, err}
	}()
	go func() {
		defer wg.Done()
		c, cancel := short()
		defer cancel()
		reps, err := eng.Tx(c, resIns("QD004"), resIns("QD005"))
		verdicts <- verdict{"tx", reps, err}
	}()
	wg.Wait()
	close(verdicts)

	if err := <-pinDone; err != nil {
		t.Fatalf("pin write: %v", err)
	}
	for v := range verdicts {
		if !errors.Is(v.err, context.DeadlineExceeded) {
			t.Fatalf("%s: got %v, want DeadlineExceeded", v.kind, v.err)
		}
		if !strings.Contains(v.err.Error(), "canceled while queued") {
			t.Fatalf("%s: error %q does not state the queued skip", v.kind, v.err)
		}
		if len(v.reps) == 0 {
			t.Fatalf("%s: no reports for skipped request", v.kind)
		}
		for _, rep := range v.reps {
			if rep == nil || rep.Applied {
				t.Fatalf("%s: skipped request report %+v, want guaranteed-unapplied", v.kind, rep)
			}
		}
	}

	// The skipped writes must not have reached the view.
	rxview.DisableChaos()
	for _, cno := range []string{"QD001", "QD002", "QD003", "QD004", "QD005"} {
		res, err := eng.Query(ctx, fmt.Sprintf(`//course[cno=%q]`, cno))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Nodes) != 0 {
			t.Fatalf("expired write %s reached the view", cno)
		}
	}
	res, err := eng.Query(ctx, `//course[cno="QD000"]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 1 {
		t.Fatalf("pin write: %d matches, want 1", len(res.Nodes))
	}
}
