package server_test

import (
	"context"
	"testing"
	"time"

	"rxview"
	"rxview/obs"
	"rxview/server"
)

func TestLoadGenReadersWithBackgroundWriter(t *testing.T) {
	eng, _ := mustRegistrarEngine(t, rxview.WithForceSideEffects())
	lg := server.LoadGen{
		Engine:   eng,
		Readers:  4,
		Duration: 150 * time.Millisecond,
		Paths:    []string{`//student`, `//course[cno="CS650"]/takenBy/student`},
		Updates: []rxview.Update{
			rxview.Insert(`//course[cno="CS650"]/takenBy`, "student", rxview.Str("SLG"), rxview.Str("Gen")),
			rxview.Delete(`//student[ssn="SLG"]`),
		},
	}
	res, err := lg.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads == 0 || res.QPS <= 0 {
		t.Errorf("no reads recorded: %+v", res)
	}
	if res.Writes == 0 {
		t.Errorf("background writer applied nothing: %+v", res)
	}
	if res.Rejected != 0 {
		t.Errorf("writer updates rejected: %+v", res)
	}
	if res.P99NS < res.P95NS || res.P95NS < res.P50NS || res.P50NS <= 0 {
		t.Errorf("reader percentiles not monotone: p50=%d p95=%d p99=%d", res.P50NS, res.P95NS, res.P99NS)
	}
	if res.WP99NS < res.WP95NS || res.WP95NS < res.WP50NS || res.WP50NS <= 0 {
		t.Errorf("writer percentiles not monotone: wp50=%d wp95=%d wp99=%d", res.WP50NS, res.WP95NS, res.WP99NS)
	}

	// Even with telemetry globally disabled the harness must still measure:
	// its histograms record via RecordValue, outside the Enabled switch.
	obs.SetEnabled(false)
	defer obs.SetEnabled(true)
	res2, err := lg.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Reads == 0 || res2.P50NS <= 0 || res2.WP50NS <= 0 {
		t.Errorf("disabled telemetry stripped the harness's own measurements: %+v", res2)
	}

	// Misconfiguration is reported, not silently measured.
	if _, err := (server.LoadGen{Engine: eng}).Run(context.Background()); err == nil {
		t.Error("empty LoadGen config did not error")
	}
}
