package server_test

import (
	"context"
	"testing"
	"time"

	"rxview"
	"rxview/server"
)

func TestLoadGenReadersWithBackgroundWriter(t *testing.T) {
	eng, _ := mustRegistrarEngine(t, rxview.WithForceSideEffects())
	lg := server.LoadGen{
		Engine:   eng,
		Readers:  4,
		Duration: 150 * time.Millisecond,
		Paths:    []string{`//student`, `//course[cno="CS650"]/takenBy/student`},
		Updates: []rxview.Update{
			rxview.Insert(`//course[cno="CS650"]/takenBy`, "student", rxview.Str("SLG"), rxview.Str("Gen")),
			rxview.Delete(`//student[ssn="SLG"]`),
		},
	}
	res, err := lg.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads == 0 || res.QPS <= 0 {
		t.Errorf("no reads recorded: %+v", res)
	}
	if res.Writes == 0 {
		t.Errorf("background writer applied nothing: %+v", res)
	}
	if res.Rejected != 0 {
		t.Errorf("writer updates rejected: %+v", res)
	}
	if res.P99NS < res.P50NS {
		t.Errorf("p99 %d < p50 %d", res.P99NS, res.P50NS)
	}

	// Misconfiguration is reported, not silently measured.
	if _, err := (server.LoadGen{Engine: eng}).Run(context.Background()); err == nil {
		t.Error("empty LoadGen config did not error")
	}
}
