package server

// Overload protection and degraded-mode serving.
//
// The writer queue is the engine's only blocking resource: reads are
// wait-free, so the failure mode under write overload is a queue that
// grows until every client is waiting behind a stalled apply loop.
// Admission control keeps that queue honest — a write is shed with
// ErrOverloaded (HTTP 429 + Retry-After) instead of queued when the depth
// crosses the shed watermark, or when the loop's estimated drain time
// already exceeds the request's deadline, so a doomed write fails in
// microseconds instead of holding a connection open to time out.
//
// Degraded mode is the durability counterpart: when a commit surfaces
// rxview.ErrDegraded (the log refused a record), the view has already
// flipped itself read-only. The engine keeps serving wait-free reads from
// the published snapshot, rejects writes up front, and runs a single
// background prober that retries View.Recover with jittered exponential
// backoff — through the apply queue, preserving the single-writer
// discipline — until the log heals and read-write is restored atomically.

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// ErrOverloaded marks a write shed by admission control instead of queued.
// The concrete type is *OverloadedError; the HTTP layer maps it to 429
// with a Retry-After header.
var ErrOverloaded = errors.New("server: writer queue overloaded")

// OverloadedError reports one shed write: the queue depth that triggered
// the shed and the estimated time until the queue would have drained —
// the client's Retry-After hint.
type OverloadedError struct {
	QueueDepth int64
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("server: writer queue overloaded (depth %d, retry after %v)", e.QueueDepth, e.RetryAfter)
}

// Is matches ErrOverloaded.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// admit decides whether a write may join the queue. Shedding reasons, in
// order: the queue is at the watermark (the loop is not keeping up —
// queuing more only adds latency for everyone), or the caller brought a
// deadline the estimated queue wait already exceeds (the write would
// expire while queued; failing now costs nothing and frees the slot).
// Reads never pass through here.
func (e *Engine) admit(deadline time.Time, hasDeadline bool) error {
	depth := e.met.depth.Value()
	if depth >= int64(e.highWater) {
		return &OverloadedError{QueueDepth: depth, RetryAfter: e.estWait(depth)}
	}
	if hasDeadline && depth > 0 {
		// Only a non-empty queue imposes a wait; an idle loop picks the
		// request up immediately, and a deadline too small for the pipeline
		// itself must surface as DeadlineExceeded, not as overload.
		if wait := e.estWait(depth); wait > time.Until(deadline) {
			return &OverloadedError{QueueDepth: depth, RetryAfter: wait}
		}
	}
	return nil
}

// estWait estimates how long a write joining the queue behind depth
// waiting requests will sit before the loop picks it up: depth times the
// loop's EWMA per-request service time. Coalescing makes the estimate
// conservative — a run retires many inserts in one batch — which is the
// right direction for an admission decision.
func (e *Engine) estWait(depth int64) time.Duration {
	svc := e.svcNanos.Load()
	if svc == 0 {
		svc = int64(time.Millisecond) // no sample yet
	}
	w := time.Duration(depth * svc)
	if w < time.Millisecond {
		w = time.Millisecond
	}
	return w
}

// observeService folds one dispatch's duration into the EWMA per-request
// service time (α = 1/8). n is the number of requests the dispatch
// retired. Written only by the apply loop; admit loads it concurrently.
func (e *Engine) observeService(d time.Duration, n int) {
	if n <= 0 {
		return
	}
	per := int64(d) / int64(n)
	if old := e.svcNanos.Load(); old != 0 {
		per = old - old/8 + per/8
	}
	e.svcNanos.Store(per)
}

// Degraded reports whether the engine's view is in degraded (read-only)
// mode: writes are rejected with rxview.ErrDegraded while reads keep
// serving the published snapshot. Safe for concurrent use — it is the
// health-probe hook.
func (e *Engine) Degraded() bool { return e.view.Degraded() }

// kickRecovery starts the background recovery prober, unless one is
// already running. Called from deliver when a verdict surfaces
// ErrDegraded (the view has just flipped read-only).
func (e *Engine) kickRecovery() {
	if !e.recovering.CompareAndSwap(false, true) {
		return
	}
	e.met.degradedG.Set(1)
	e.wg.Add(1)
	go e.probeRecovery()
}

// probeRecovery retries recovery with jittered exponential backoff until
// the view is read-write again or the engine closes. It runs off-loop but
// never touches the view: each attempt is a recover request submitted
// through the queue, executed by the apply goroutine like any write.
func (e *Engine) probeRecovery() {
	defer e.wg.Done()
	backoff := e.cfg.probeBase
	for {
		select {
		case <-time.After(jitter(backoff)):
		case <-e.stopCtx.Done():
			return
		}
		req := &request{ctx: e.stopCtx, recover: true, done: make(chan result, 1)}
		if err := e.submit(e.stopCtx, req); err != nil {
			return // engine closed (or closing): the next boot replays the log instead
		}
		res := <-req.done
		if res.err == nil && !e.view.Degraded() {
			e.met.recoveries.Inc()
			e.met.degradedG.Set(0)
			e.recovering.Store(false)
			// If a later write re-degrades the view, its delivery kicks a
			// fresh prober; this one is done.
			return
		}
		if backoff < e.cfg.probeMax {
			backoff *= 2
			if backoff > e.cfg.probeMax {
				backoff = e.cfg.probeMax
			}
		}
	}
}

// runRecover executes one recovery probe on the apply goroutine — the
// only goroutine allowed to touch the view. No epoch is published: the
// generation does not move on recovery, it resumes from where degradation
// froze it.
func (e *Engine) runRecover(r *request) {
	e.met.probes.Inc()
	err := e.view.Recover()
	r.done <- result{gen: e.view.Generation(), err: err}
}

// jitter spreads a backoff delay uniformly over [d/2, d], decorrelating
// probers across replicas that degraded together.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)/2+1))
}
