package server

// Follower runtime. A server.Replica keeps a read-only rxview.Replica
// converging on a primary over the /repl HTTP surface: it boots from the
// primary's newest checkpoint, applies the streamed change log one record
// per generation, and re-syncs from a fresh checkpoint whenever the stream
// gaps or the primary pruned the range. Every restore and record apply runs
// on the follower engine's apply goroutine (Engine.exec), so the
// single-writer discipline holds on replicas exactly as on primaries, and
// every applied record publishes an epoch — follower reads are the same
// wait-free snapshot reads, one write-history prefix behind the primary.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rxview"
)

// ErrReadOnlyReplica marks a write submitted to a follower engine. The
// concrete type is *ReadOnlyReplicaError; the HTTP layer maps it to 421
// (Misdirected Request) with the primary's address in the X-Xview-Primary
// header and the JSON body, so clients re-aim instead of retrying here.
var ErrReadOnlyReplica = errors.New("server: replica is read-only")

// ReadOnlyReplicaError reports one refused write and where it belongs.
type ReadOnlyReplicaError struct {
	Primary string
}

func (e *ReadOnlyReplicaError) Error() string {
	return fmt.Sprintf("server: replica is read-only; write to the primary at %s", e.Primary)
}

// Is matches ErrReadOnlyReplica.
func (e *ReadOnlyReplicaError) Is(target error) bool { return target == ErrReadOnlyReplica }

// FollowStatus is a follower's position relative to its primary. Lag is in
// generations against the newest durable watermark the follower has
// observed; Following reports readiness — the primary has been contacted
// and the lag is inside the follow watermark.
type FollowStatus struct {
	Primary           string `json:"primary"`
	Generation        uint64 `json:"generation"`
	PrimaryGeneration uint64 `json:"primary_generation"`
	Lag               uint64 `json:"lag"`
	Watermark         uint64 `json:"watermark"`
	Following         bool   `json:"following"`
}

type replicaConfig struct {
	watermark   uint64
	window      time.Duration
	backoffBase time.Duration
	backoffMax  time.Duration
	client      *http.Client
	logf        func(string, ...any)
	engOpts     []Option
}

// ReplicaOption configures a follower runtime.
type ReplicaOption func(*replicaConfig)

// WithFollowWatermark sets how many generations a follower may trail the
// primary's durable watermark and still report ready ("following" turns
// into "ready" on /healthz once lag ≤ n). Default 8.
func WithFollowWatermark(n uint64) ReplicaOption {
	return func(c *replicaConfig) { c.watermark = n }
}

// WithPollWindow sets how long the follower lets one caught-up stream poll
// ride before reconnecting. Default 25s; tests shrink it.
func WithPollWindow(d time.Duration) ReplicaOption {
	return func(c *replicaConfig) {
		if d > 0 {
			c.window = d
		}
	}
}

// WithFollowBackoff sets the base and cap of the jittered exponential
// backoff between reconnect attempts after a transport failure. Defaults:
// 50ms base, 5s cap.
func WithFollowBackoff(base, max time.Duration) ReplicaOption {
	return func(c *replicaConfig) {
		if base > 0 {
			c.backoffBase = base
		}
		if max > 0 {
			c.backoffMax = max
		}
	}
}

// WithFollowClient sets the HTTP client used against the primary.
func WithFollowClient(cl *http.Client) ReplicaOption {
	return func(c *replicaConfig) {
		if cl != nil {
			c.client = cl
		}
	}
}

// WithFollowLog routes the follower's reconnect/re-sync notices somewhere
// visible (default: dropped).
func WithFollowLog(f func(format string, args ...any)) ReplicaOption {
	return func(c *replicaConfig) { c.logf = f }
}

// WithEngineOptions forwards options to the follower's serving engine.
func WithEngineOptions(opts ...Option) ReplicaOption {
	return func(c *replicaConfig) { c.engOpts = append(c.engOpts, opts...) }
}

// Replica is the serving side of a follower: the engine that answers reads
// (and refuses writes with 421 + the primary's address) plus the background
// loop that keeps the underlying rxview.Replica converging on the primary.
type Replica struct {
	rep     *rxview.Replica
	e       *Engine
	cfg     replicaConfig
	primary string // base URL of the primary's API (or its /v/{name} prefix)

	// primaryGen is the newest durable watermark observed from the primary
	// (response headers and streamed record generations); contacted flips
	// once the first checkpoint restore succeeded — before that the lag is
	// unknown and the follower must not report ready.
	primaryGen atomic.Uint64
	contacted  atomic.Bool

	stopCtx    context.Context
	stopCancel context.CancelFunc
	wg         sync.WaitGroup
}

// NewReplica starts a follower over an opened rxview.Replica: a read-only
// serving engine plus the follow loop fetching primary's checkpoint and
// change-log stream. primary is the base URL of the primary's API ("http://
// host:port", or "http://host:port/v/name" for a registry-hosted view).
// Close stops the loop and the engine.
func NewReplica(rep *rxview.Replica, primary string, opts ...ReplicaOption) *Replica {
	cfg := replicaConfig{
		watermark:   8,
		window:      25 * time.Second,
		backoffBase: 50 * time.Millisecond,
		backoffMax:  5 * time.Second,
		client:      &http.Client{},
	}
	for _, o := range opts {
		o(&cfg)
	}
	e := New(rep.View(), cfg.engOpts...)
	e.setPrimary(primary)
	f := &Replica{rep: rep, e: e, cfg: cfg, primary: primary}
	//lint:ignore xviewlint/ctxflow the follow loop's lifetime is the replica's, not any request's; Close cancels it
	f.stopCtx, f.stopCancel = context.WithCancel(context.Background())
	f.wg.Add(1)
	go f.follow()
	return f
}

// Engine returns the follower's serving engine: wait-free reads over the
// replica's published epochs, writes refused with ErrReadOnlyReplica.
func (f *Replica) Engine() *Engine { return f.e }

// Status reports the follower's position. Safe for concurrent use — it is
// the /healthz and /repl/info hook, reading only published state.
func (f *Replica) Status() FollowStatus {
	gen := f.e.Generation()
	pg := f.primaryGen.Load()
	if pg < gen {
		pg = gen
	}
	lag := pg - gen
	return FollowStatus{
		Primary:           f.primary,
		Generation:        gen,
		PrimaryGeneration: pg,
		Lag:               lag,
		Watermark:         f.cfg.watermark,
		Following:         f.contacted.Load() && lag <= f.cfg.watermark,
	}
}

// Close stops the follow loop, waits for it, and closes the engine. The
// replica keeps its last applied state in memory; a restarted process
// re-syncs from the primary's checkpoint. Idempotent.
func (f *Replica) Close() {
	f.stopCancel()
	f.wg.Wait()
	f.e.Close()
}

func (f *Replica) logf(format string, args ...any) {
	if f.cfg.logf != nil {
		f.cfg.logf(format, args...)
	}
}

// notePrimary folds an observed primary watermark into the max, and keeps
// the lag gauge current.
func (f *Replica) notePrimary(gen uint64) {
	for {
		cur := f.primaryGen.Load()
		if gen <= cur || f.primaryGen.CompareAndSwap(cur, gen) {
			break
		}
	}
	pg, own := f.primaryGen.Load(), f.e.Generation()
	if pg > own {
		f.e.met.followLag.Set(int64(pg - own))
	} else {
		f.e.met.followLag.Set(0)
	}
}

// follow is the convergence loop: restore from a checkpoint when needed,
// then ride the stream; reconnect immediately on clean long-poll recycles
// and with jittered exponential backoff on transport failures.
func (f *Replica) follow() {
	defer f.wg.Done()
	backoff := f.cfg.backoffBase
	needRestore := true // the locally seeded state is provisional; boot from the primary's copy of record
	for f.stopCtx.Err() == nil {
		err := f.syncOnce(&needRestore)
		if err == nil {
			backoff = f.cfg.backoffBase
			continue
		}
		if f.stopCtx.Err() != nil {
			return
		}
		f.e.met.followReconnects.Inc()
		f.logf("replica: %s: %v (reconnecting)", f.primary, err)
		select {
		case <-time.After(jitter(backoff)):
		case <-f.stopCtx.Done():
			return
		}
		if backoff < f.cfg.backoffMax {
			if backoff *= 2; backoff > f.cfg.backoffMax {
				backoff = f.cfg.backoffMax
			}
		}
	}
}

// syncOnce performs one contact with the primary: an optional checkpoint
// restore, then one stream poll applied record by record. A nil return
// means reconnect immediately (clean poll recycle, or a re-sync was
// scheduled via needRestore); an error means back off first.
func (f *Replica) syncOnce(needRestore *bool) error {
	if *needRestore {
		if err := f.restore(); err != nil {
			return err
		}
		*needRestore = false
	}
	from := f.rep.Generation() // safe: exec verdicts order this goroutine after every apply
	resp, err := f.get("/repl/stream?from=" + strconv.FormatUint(from, 10))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		// The primary pruned our range: catch up from its newest checkpoint.
		f.e.met.followResyncs.Inc()
		*needRestore = true
		return nil
	default:
		return fmt.Errorf("stream from %d: %s", from, readStatus(resp))
	}
	if d, perr := strconv.ParseUint(resp.Header.Get("X-Xview-Durable"), 10, 64); perr == nil {
		f.notePrimary(d)
	}
	fr := rxview.NewReplFrameReader(resp.Body)
	for {
		rec, err := fr.Next()
		if errors.Is(err, io.EOF) {
			return nil // clean poll end: reconnect with the advanced from
		}
		if err != nil {
			return err // dropped mid-frame or corrupt: reconnect and re-request
		}
		aerr := f.e.exec(f.stopCtx, func() error { return f.rep.ApplyRecord(rec) })
		switch {
		case aerr == nil:
			f.e.met.followRecs.Inc()
			f.notePrimary(rec.Generation())
		case errors.Is(aerr, rxview.ErrCheckpointMismatch):
			// The stream does not continue our generation — we lost part of
			// the history. Replaying anyway would build a wrong state; a
			// checkpoint restore is the only sound continuation.
			f.e.met.followResyncs.Inc()
			*needRestore = true
			return nil
		case errors.Is(aerr, ErrClosed) || f.stopCtx.Err() != nil:
			return nil
		default:
			return aerr
		}
	}
}

// restore fetches the primary's newest checkpoint and swaps it in on the
// apply goroutine.
func (f *Replica) restore() error {
	resp, err := f.get("/repl/checkpoint")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("checkpoint fetch: %s", readStatus(resp))
	}
	gen, err := strconv.ParseUint(resp.Header.Get("X-Xview-Generation"), 10, 64)
	if err != nil {
		return fmt.Errorf("checkpoint fetch: bad X-Xview-Generation: %w", err)
	}
	state, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("checkpoint fetch: %w", err)
	}
	if err := f.e.exec(f.stopCtx, func() error { return f.rep.Restore(gen, state) }); err != nil {
		if errors.Is(err, ErrClosed) || f.stopCtx.Err() != nil {
			return nil
		}
		return err
	}
	if d, perr := strconv.ParseUint(resp.Header.Get("X-Xview-Durable"), 10, 64); perr == nil {
		f.notePrimary(d)
	}
	f.notePrimary(gen)
	f.contacted.Store(true)
	return nil
}

// get issues one GET against the primary under the loop's context.
func (f *Replica) get(path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(f.stopCtx, http.MethodGet, f.primary+path, nil)
	if err != nil {
		return nil, err
	}
	return f.cfg.client.Do(req)
}

// readStatus summarizes a non-200 response for an error message.
func readStatus(resp *http.Response) string {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	if len(body) == 0 {
		return resp.Status
	}
	return resp.Status + ": " + string(body)
}
