package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"rxview"
)

// LoadGen drives an Engine with concurrent readers and an optional
// background writer, measuring read throughput and latency — the harness
// behind the benchrunner serve experiment and any capacity test.
type LoadGen struct {
	Engine   *Engine
	Readers  int             // concurrent reader goroutines (≥ 1)
	Duration time.Duration   // how long to drive load
	Paths    []string        // query paths, round-robin per reader
	Updates  []rxview.Update // writer cycles through these; empty = read-only
}

// LoadResult summarizes one load run.
type LoadResult struct {
	Readers   int     `json:"readers"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Reads     int64   `json:"reads"`
	Writes    int64   `json:"writes"`   // applied by the background writer
	Rejected  int64   `json:"rejected"` // writer submissions that errored
	QPS       float64 `json:"qps"`      // aggregate reads per second
	P50NS     int64   `json:"p50_ns"`   // median read latency
	P99NS     int64   `json:"p99_ns"`
}

// Run drives the engine until the duration elapses or ctx is canceled and
// returns the aggregate measurements. The first reader error aborts the
// run.
func (lg LoadGen) Run(ctx context.Context) (LoadResult, error) {
	if lg.Engine == nil || lg.Readers < 1 || len(lg.Paths) == 0 || lg.Duration <= 0 {
		return LoadResult{}, errors.New("server: LoadGen needs an engine, ≥1 reader, ≥1 path and a positive duration")
	}
	runCtx, cancel := context.WithTimeout(ctx, lg.Duration)
	defer cancel()

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []int64
		writes    int64
		rejected  int64
		firstErr  error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	start := time.Now()
	for i := 0; i < lg.Readers; i++ {
		wg.Add(1)
		go func(reader int) {
			defer wg.Done()
			local := make([]int64, 0, 4096)
			for n := 0; runCtx.Err() == nil; n++ {
				path := lg.Paths[(reader+n)%len(lg.Paths)]
				t0 := time.Now()
				if _, err := lg.Engine.Query(runCtx, path); err != nil {
					// The run deadline can expire mid-query; that ends the
					// loop, it is not a reader failure.
					if !isCtxErr(err) {
						fail(fmt.Errorf("reader %d: %s: %w", reader, path, err))
						return
					}
					break
				}
				local = append(local, time.Since(t0).Nanoseconds())
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}(i)
	}
	if len(lg.Updates) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastYield := time.Now()
			for n := 0; runCtx.Err() == nil; n++ {
				u := lg.Updates[n%len(lg.Updates)]
				rep, err := lg.Engine.Update(runCtx, u)
				mu.Lock()
				switch {
				case err != nil && !isCtxErr(err) && !errors.Is(err, ErrClosed):
					rejected++
				case err == nil && rep != nil && rep.Applied:
					writes++
				}
				mu.Unlock()
				// The writer and the apply loop hand the processor to each
				// other through channel wake-ups (the runnext slot); with
				// few cores that ping-pong can starve every reader. Burst
				// writes for ~2ms, then yield one scheduler round so the
				// readers stay serviced — on multi-core boxes the yield is
				// effectively free.
				if time.Since(lastYield) > 2*time.Millisecond {
					runtime.Gosched()
					lastYield = time.Now()
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := LoadResult{
		Readers:   lg.Readers,
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
		Reads:     int64(len(latencies)),
		Writes:    writes,
		Rejected:  rejected,
	}
	if elapsed > 0 {
		res.QPS = float64(res.Reads) / elapsed.Seconds()
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		res.P50NS = percentile(latencies, 50)
		res.P99NS = percentile(latencies, 99)
	}
	return res, firstErr
}

// percentile reads the p-th percentile from sorted latencies
// (nearest-rank).
func percentile(sorted []int64, p int) int64 {
	idx := len(sorted)*p/100 - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
