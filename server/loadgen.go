package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"rxview"
	"rxview/obs"
)

// LoadGen drives an Engine with concurrent readers and an optional
// background writer, measuring read throughput and latency — the harness
// behind the benchrunner serve experiment and any capacity test.
type LoadGen struct {
	Engine   *Engine
	Readers  int             // concurrent reader goroutines (≥ 1)
	Duration time.Duration   // how long to drive load
	Paths    []string        // query paths, round-robin per reader
	Updates  []rxview.Update // writer cycles through these; empty = read-only
	// MaxRetries bounds the writer's retries per update after a shed
	// (ErrOverloaded, honoring its Retry-After estimate) or degraded
	// (ErrDegraded, unapplied) verdict — both are transient by contract.
	// Default 4; negative disables retrying.
	MaxRetries int
	// Engines, when non-empty, spreads the readers across several engines —
	// a primary plus its followers, or many tenant views — with reader i
	// pinned to Engines[i%len(Engines)]. The writer still targets Engine.
	Engines []*Engine
	// Lookup resolves a 421 redirect: when the write target refuses with
	// ReadOnlyReplicaError (it is a follower), Lookup maps the advertised
	// primary address onto an engine to retry against — at most one redirect
	// per update, mirroring a client that re-aims once and otherwise gives
	// up. Nil disables redirect following.
	Lookup func(primary string) *Engine
}

// LoadResult summarizes one load run. Latency percentiles come from obs
// histograms the readers and the writer record every operation into
// (LatencyBounds buckets, interpolated), so a load run reports the same
// tail shape a /metrics scrape of the same traffic would.
type LoadResult struct {
	Readers   int     `json:"readers"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Reads     int64   `json:"reads"`
	Writes    int64   `json:"writes"`    // applied by the background writer
	Rejected  int64   `json:"rejected"`  // writer submissions that errored
	Retries   int64   `json:"retries"`   // writer retries after shed/degraded verdicts
	Redirects int64   `json:"redirects"` // writer 421s followed to the advertised primary
	QPS       float64 `json:"qps"`       // aggregate reads per second
	P50NS     int64   `json:"p50_ns"`    // median read latency
	P95NS     int64   `json:"p95_ns"`
	P99NS     int64   `json:"p99_ns"`
	WP50NS    int64   `json:"write_p50_ns"` // median applied-write latency
	WP95NS    int64   `json:"write_p95_ns"`
	WP99NS    int64   `json:"write_p99_ns"`
}

// Run drives the engine until the duration elapses or ctx is canceled and
// returns the aggregate measurements. The first reader error aborts the
// run.
func (lg LoadGen) Run(ctx context.Context) (LoadResult, error) {
	if lg.Engine == nil || lg.Readers < 1 || len(lg.Paths) == 0 || lg.Duration <= 0 {
		return LoadResult{}, errors.New("server: LoadGen needs an engine, ≥1 reader, ≥1 path and a positive duration")
	}
	runCtx, cancel := context.WithTimeout(ctx, lg.Duration)
	defer cancel()

	// Per-op latencies aggregate into run-private obs histograms via
	// RecordValue — atomic (no reader contention on a shared slice) and
	// immune to the global SetEnabled switch, which strips instrumentation
	// overhead but must never strip the harness's own measurements.
	reg := obs.NewRegistry()
	readH := reg.NewHistogram("loadgen_read_seconds",
		"Per-query latency observed by the load generator's readers.", obs.LatencyBounds())
	writeH := reg.NewHistogram("loadgen_write_seconds",
		"Per-applied-update latency observed by the load generator's writer.", obs.LatencyBounds())

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		writes    int64
		rejected  int64
		retries   int64
		redirects int64
		firstErr  error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	targets := lg.Engines
	if len(targets) == 0 {
		targets = []*Engine{lg.Engine}
	}

	start := time.Now()
	for i := 0; i < lg.Readers; i++ {
		wg.Add(1)
		go func(reader int) {
			defer wg.Done()
			e := targets[reader%len(targets)]
			for n := 0; runCtx.Err() == nil; n++ {
				path := lg.Paths[(reader+n)%len(lg.Paths)]
				t0 := time.Now()
				if _, err := e.Query(runCtx, path); err != nil {
					// The run deadline can expire mid-query; that ends the
					// loop, it is not a reader failure.
					if !isCtxErr(err) {
						fail(fmt.Errorf("reader %d: %s: %w", reader, path, err))
						return
					}
					break
				}
				readH.RecordValue(time.Since(t0).Seconds())
			}
		}(i)
	}
	if len(lg.Updates) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastYield := time.Now()
			for n := 0; runCtx.Err() == nil; n++ {
				u := lg.Updates[n%len(lg.Updates)]
				t0 := time.Now()
				rep, err, tries, redir := lg.applyWithRetry(runCtx, u)
				applied := err == nil && rep != nil && rep.Applied
				if applied {
					writeH.RecordValue(time.Since(t0).Seconds())
				}
				mu.Lock()
				retries += tries
				redirects += redir
				switch {
				case err != nil && !isCtxErr(err) && !errors.Is(err, ErrClosed):
					rejected++
				case applied:
					writes++
				}
				mu.Unlock()
				// The writer and the apply loop hand the processor to each
				// other through channel wake-ups (the runnext slot); with
				// few cores that ping-pong can starve every reader. Burst
				// writes for ~2ms, then yield one scheduler round so the
				// readers stay serviced — on multi-core boxes the yield is
				// effectively free.
				if time.Since(lastYield) > 2*time.Millisecond {
					runtime.Gosched()
					lastYield = time.Now()
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rs, ws := readH.Snapshot(), writeH.Snapshot()
	res := LoadResult{
		Readers:   lg.Readers,
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
		Reads:     int64(rs.Count),
		Writes:    writes,
		Rejected:  rejected,
		Retries:   retries,
		Redirects: redirects,
		P50NS:     nsQuantile(rs, 0.50),
		P95NS:     nsQuantile(rs, 0.95),
		P99NS:     nsQuantile(rs, 0.99),
		WP50NS:    nsQuantile(ws, 0.50),
		WP95NS:    nsQuantile(ws, 0.95),
		WP99NS:    nsQuantile(ws, 0.99),
	}
	if elapsed > 0 {
		res.QPS = float64(res.Reads) / elapsed.Seconds()
	}
	return res, firstErr
}

// applyWithRetry submits one update, retrying shed and degraded verdicts
// with bounded jittered exponential backoff: both are transient by
// contract (the queue drains, the recovery prober heals the log) and both
// guarantee the write was not applied — an OverloadedError never reached
// the queue, and a DegradedError with Applied false was rejected up
// front. An indeterminate Applied-true verdict is never retried: the
// write is already in memory, and a retry would double-apply it. An
// OverloadedError's RetryAfter estimate is honored as the backoff floor.
//
// A 421 verdict — the target is a read-only follower — is not a retry but
// a redirect: when Lookup resolves the advertised primary, the update is
// re-aimed there immediately (no backoff, the write never entered a queue)
// without consuming an attempt, at most once per update.
func (lg LoadGen) applyWithRetry(ctx context.Context, u rxview.Update) (*rxview.Report, error, int64, int64) {
	max := lg.MaxRetries
	if max == 0 {
		max = 4
	}
	backoff := time.Millisecond
	target := lg.Engine
	var tries, redirects int64
	for attempt := 0; ; attempt++ {
		rep, err := target.Update(ctx, u)
		var ro *ReadOnlyReplicaError
		if err != nil && errors.As(err, &ro) && lg.Lookup != nil && redirects == 0 {
			if p := lg.Lookup(ro.Primary); p != nil {
				target = p
				redirects++
				attempt--
				continue
			}
		}
		if err == nil || attempt >= max ||
			(!errors.Is(err, ErrOverloaded) && !errors.Is(err, rxview.ErrDegraded)) {
			return rep, err, tries, redirects
		}
		var de *rxview.DegradedError
		if errors.As(err, &de) && de.Applied {
			return rep, err, tries, redirects
		}
		d := backoff
		var oe *OverloadedError
		if errors.As(err, &oe) && oe.RetryAfter > d {
			d = oe.RetryAfter
		}
		tries++
		select {
		case <-time.After(jitter(d)):
		case <-ctx.Done():
			// Report the last serving verdict, not the run's own deadline.
			return rep, err, tries, redirects
		}
		backoff *= 2
	}
}

// nsQuantile reads an interpolated quantile from a latency snapshot as
// integer nanoseconds.
func nsQuantile(s *obs.HistSnapshot, q float64) int64 {
	return int64(s.Quantile(q) * 1e9)
}
