package server_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"rxview"
	"rxview/obs"
	"rxview/server"
)

// TestGateReadiness: before SetReady the gate answers liveness 200 but
// readiness (and everything else) 503 with the startup state; after
// SetReady the full API serves. This is the contract that keeps a load
// balancer from routing to a node still replaying its log.
func TestGateReadiness(t *testing.T) {
	g := server.NewGate("recovering")
	ts := httptest.NewServer(g)
	defer ts.Close()

	code, out := get(t, ts, "/livez")
	if code != http.StatusOK || out["ok"] != true {
		t.Errorf("/livez before ready = %d %v, want 200 ok", code, out)
	}
	code, out = get(t, ts, "/healthz")
	if code != http.StatusServiceUnavailable || out["ok"] != false || out["state"] != "recovering" {
		t.Errorf("/healthz before ready = %d %v, want 503 state=recovering", code, out)
	}
	if code, _ := post(t, ts, "/query", map[string]any{"path": "//course"}); code != http.StatusServiceUnavailable {
		t.Errorf("POST /query before ready = %d, want 503", code)
	}

	eng, _ := mustRegistrarEngine(t)
	g.SetReady(eng, server.HandlerOptions{Timeout: 5 * time.Second})
	if g.State() != "ready" {
		t.Errorf("State after SetReady = %q", g.State())
	}
	code, out = get(t, ts, "/healthz")
	if code != http.StatusOK || out["ok"] != true || out["state"] != "ready" {
		t.Errorf("/healthz after ready = %d %v, want 200 ready", code, out)
	}
	if code, out := post(t, ts, "/query", map[string]any{"path": "//course"}); code != http.StatusOK {
		t.Errorf("POST /query after ready = %d %v", code, out)
	}
}

// TestHealthzCheckpointing: an in-flight checkpoint flips readiness to 503
// (state "checkpointing") while liveness stays 200 — the drain signal for
// the writer stall.
func TestHealthzCheckpointing(t *testing.T) {
	eng, _ := mustRegistrarEngine(t)
	var busy atomic.Bool
	ts := httptest.NewServer(server.NewHandler(eng, server.HandlerOptions{
		Timeout:       5 * time.Second,
		Checkpointing: busy.Load,
	}))
	defer ts.Close()

	if code, out := get(t, ts, "/healthz"); code != http.StatusOK || out["state"] != "ready" {
		t.Errorf("/healthz idle = %d %v", code, out)
	}
	busy.Store(true)
	code, out := get(t, ts, "/healthz")
	if code != http.StatusServiceUnavailable || out["ok"] != false || out["state"] != "checkpointing" {
		t.Errorf("/healthz during checkpoint = %d %v, want 503 checkpointing", code, out)
	}
	if code, out := get(t, ts, "/livez"); code != http.StatusOK || out["ok"] != true {
		t.Errorf("/livez during checkpoint = %d %v, want 200", code, out)
	}
	busy.Store(false)
	if code, _ := get(t, ts, "/healthz"); code != http.StatusOK {
		t.Errorf("/healthz after checkpoint = %d, want 200", code)
	}
}

// TestMetricsAndDebugEndpoints drives a little traffic and checks the
// introspection surface end to end: /metrics parses as valid exposition
// and covers both the engine's registry and the process-wide one;
// /debug/vars is JSON; /debug/slow reflects the configured threshold.
func TestMetricsAndDebugEndpoints(t *testing.T) {
	ts, eng := newTestServer(t, 5*time.Second, rxview.WithForceSideEffects())
	eng.SetSlowThreshold(time.Nanosecond) // everything is slow: the ring must fill

	ctx := context.Background()
	if _, err := eng.Update(ctx, rxview.Insert(`//course[cno="CS650"]/takenBy`,
		"student", rxview.Str("SM1"), rxview.Str("Metrics"))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := eng.Query(ctx, `//student[ssn="SM1"]`); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	byName := map[string]obs.ParsedFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	for _, want := range []string{
		"xview_engine_queries_total",   // engine registry
		"xview_engine_query_seconds",   // engine histogram
		"xview_pipeline_phase_seconds", // process-wide pipeline registry
		"xview_path_cache_hits_total",  // process-wide cache counters
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("/metrics missing family %s", want)
		}
	}
	if f := byName["xview_engine_queries_total"]; len(f.Samples) != 1 || f.Samples[0].Value < 3 {
		t.Errorf("xview_engine_queries_total = %+v, want one sample ≥ 3", f.Samples)
	}

	code, vars := get(t, ts, "/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars = %d", code)
	}
	if _, ok := vars["xview_engine_queries_total"]; !ok {
		t.Errorf("/debug/vars missing xview_engine_queries_total: %v", vars)
	}

	code, slow := get(t, ts, "/debug/slow")
	if code != http.StatusOK {
		t.Fatalf("/debug/slow = %d", code)
	}
	if slow["threshold_ns"] != float64(1) {
		t.Errorf("/debug/slow threshold_ns = %v, want 1", slow["threshold_ns"])
	}
	entries, ok := slow["entries"].([]any)
	if !ok || len(entries) == 0 {
		t.Fatalf("/debug/slow entries = %v, want non-empty list", slow["entries"])
	}
	kinds := map[string]bool{}
	for _, e := range entries {
		kinds[e.(map[string]any)["kind"].(string)] = true
	}
	if !kinds["query"] || !kinds["commit"] {
		t.Errorf("/debug/slow kinds = %v, want both query and commit", kinds)
	}
}
