package server

import (
	"container/list"
	"sync"

	"rxview"
)

// resultMemo caches query results per published epoch: the key is the path
// text alone because the memo's lifetime IS the generation — publish hangs
// a fresh empty memo off every new snapshot, so a hit can never serve a
// stale epoch's answer. Together with the process-wide compiled-path cache
// a repeated hot query skips both the parse and the evaluation.
//
// Only successful evaluations are cached (parse errors are already cached
// at the compiled-path layer; context errors are caller-specific). The
// cached node slices are shared by every hit, which is safe because
// rxview.Node values are plain data and handlers only read them.
//
// The LRU shape mirrors internal/xpath.Cache deliberately but cannot reuse
// it: only the root rxview package may import internal/ (enforced by the
// boundary guard test), so this package keeps its own copy of the
// mutex + list + map idiom.
type resultMemo struct {
	mu     sync.Mutex
	cap    int
	lru    *list.List // front = most recent; values are *memoEntry
	byPath map[string]*list.Element
}

type memoEntry struct {
	path  string
	nodes []rxview.Node
}

func newResultMemo(capacity int) *resultMemo {
	if capacity < 1 {
		capacity = 1
	}
	return &resultMemo{
		cap:    capacity,
		lru:    list.New(),
		byPath: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached nodes for a path at this epoch.
func (m *resultMemo) get(path string) ([]rxview.Node, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.byPath[path]
	if !ok {
		return nil, false
	}
	m.lru.MoveToFront(el)
	return el.Value.(*memoEntry).nodes, true
}

// put records a successful evaluation, evicting the least recently used
// entry beyond capacity. Racing puts for the same path keep the first.
func (m *resultMemo) put(path string, nodes []rxview.Node) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.byPath[path]; ok {
		return
	}
	m.byPath[path] = m.lru.PushFront(&memoEntry{path: path, nodes: nodes})
	if m.lru.Len() > m.cap {
		old := m.lru.Back()
		m.lru.Remove(old)
		delete(m.byPath, old.Value.(*memoEntry).path)
	}
}
