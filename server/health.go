package server

// Readiness gating. A serving process has two distinct health questions:
//
//	liveness  — "is the process up?"           GET /livez,   always 200
//	readiness — "should traffic route here?"   GET /healthz, 503 until ready
//
// The Gate is the front door that keeps them distinct: it answers HTTP
// immediately — before the view has finished boot replay — with 503s that
// carry the recovery state, and atomically swaps in the full API handler
// once SetReady is called. Load balancers polling /healthz therefore never
// route to a node that is still replaying its log, while /livez keeps the
// process from being killed during a long recovery.

import (
	"context"
	"errors"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// Gate serves readiness 503s until an Engine is attached, then delegates
// every request to the engine's full handler. Safe for concurrent use; the
// ready swap is atomic and one-way.
type Gate struct {
	state atomic.Pointer[string]
	ready atomic.Pointer[gateBackend]
}

type gateBackend struct {
	h      http.Handler
	e      *Engine
	follow func() FollowStatus
}

// NewGate returns a gate in the not-ready state; state names the startup
// phase reported by /healthz (e.g. "loading", "recovering").
func NewGate(state string) *Gate {
	g := &Gate{}
	g.SetState(state)
	return g
}

// SetState updates the startup phase reported while not ready.
func (g *Gate) SetState(state string) { g.state.Store(&state) }

// State returns the current startup phase: "ready" once SetReady ran —
// or "degraded" when the attached engine's view has flipped read-only
// after a disk failure (reads keep serving; the recovery prober restores
// "ready" automatically), or "following" on a follower node that has not
// yet closed to within the follow watermark of its primary.
func (g *Gate) State() string {
	if b := g.ready.Load(); b != nil {
		if b.e != nil && b.e.Degraded() {
			return "degraded"
		}
		if b.follow != nil && !b.follow().Following {
			return "following"
		}
		return "ready"
	}
	return *g.state.Load()
}

// SetReady attaches the engine and opens the gate: from here on every
// request is served by NewHandler(e, opts).
func (g *Gate) SetReady(e *Engine, opts HandlerOptions) {
	g.ready.Store(&gateBackend{h: NewHandler(e, opts), e: e, follow: opts.Follow})
}

// engine returns the attached engine, or nil before SetReady.
func (g *Gate) engine() *Engine {
	if b := g.ready.Load(); b != nil {
		return b.e
	}
	return nil
}

// ServeHTTP delegates to the full handler once ready. Before that only
// liveness answers 200; everything else — /healthz included — gets a 503
// with the recovery state, so a balancer keeps the node out of rotation
// without mistaking it for dead.
func (g *Gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if b := g.ready.Load(); b != nil {
		b.h.ServeHTTP(w, r)
		return
	}
	if r.Method == http.MethodGet && r.URL.Path == "/livez" {
		writeJSON(w, http.StatusOK, livenessResponse{OK: true})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, healthResponse{
		OK:    false,
		State: g.State(),
	})
}

// ServeGated runs the gate on addr until ctx is canceled, then shuts down
// gracefully (draining in-flight requests) and closes the engine if one was
// attached. It is ListenAndServe for a process that wants to answer health
// probes while its view is still loading: start ServeGated first, open the
// view, then Gate.SetReady.
func ServeGated(ctx context.Context, addr string, g *Gate) error {
	return ServeHandler(ctx, addr, g, func() {
		if e := g.engine(); e != nil {
			e.Close()
		}
	})
}

// ServeHandler runs any handler — a Gate, a multi-tenant Registry — on addr
// until ctx is canceled, then shuts down gracefully (draining in-flight
// requests) and calls shutdown (nil ok) to release whatever the handler
// owns: the caller decides whether that is one engine or a fleet of them.
func ServeHandler(ctx context.Context, addr string, h http.Handler, shutdown func()) error {
	// Long-poll handlers (/repl/stream) hold their connections active for
	// the whole poll window, which would make every graceful Shutdown of a
	// primary with connected followers wait out the full drain timeout.
	// Deriving request contexts from a root canceled by RegisterOnShutdown
	// ends those polls the moment draining starts — a canceled poll is a
	// normal stream end, and the follower resumes against the next primary
	// address it is given. Point requests see the same cancellation but
	// only at their blocking points; a write canceled in-queue reports
	// context.Canceled without being applied, per the engine's contract.
	//lint:ignore xviewlint/ctxflow the connection root must outlive the serve ctx: requests drain after it is canceled
	connCtx, connCancel := context.WithCancel(context.Background())
	defer connCancel()
	srv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return connCtx },
	}
	srv.RegisterOnShutdown(connCancel)
	if shutdown == nil {
		shutdown = func() {}
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		shutdown()
		return err
	case <-ctx.Done():
	}
	//lint:ignore xviewlint/ctxflow graceful shutdown starts when the serve ctx is already canceled; its deadline must be independent of it
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := srv.Shutdown(shutCtx)
	shutdown()
	if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) && err == nil {
		err = serveErr
	}
	return err
}
