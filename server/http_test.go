package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rxview"
	"rxview/server"
)

func newTestServer(t *testing.T, timeout time.Duration, opts ...rxview.Option) (*httptest.Server, *server.Engine) {
	t.Helper()
	eng, _ := mustRegistrarEngine(t, opts...)
	ts := httptest.NewServer(server.NewHandler(eng, server.HandlerOptions{Timeout: timeout}))
	t.Cleanup(ts.Close)
	return ts, eng
}

func post(t *testing.T, ts *httptest.Server, path string, body any) (int, map[string]any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s: decoding response: %v", path, err)
	}
	return resp.StatusCode, out
}

func get(t *testing.T, ts *httptest.Server, path string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s: decoding response: %v", path, err)
	}
	return resp.StatusCode, out
}

func TestHandlerQueryUpdateStatsHealth(t *testing.T) {
	ts, _ := newTestServer(t, 5*time.Second, rxview.WithForceSideEffects())

	code, out := post(t, ts, "/query", map[string]any{"path": `//course[cno="CS650"]/takenBy/student`})
	if code != http.StatusOK {
		t.Fatalf("/query status = %d: %v", code, out)
	}
	before := int(out["count"].(float64))

	code, out = post(t, ts, "/update", map[string]any{
		"kind": "insert", "type": "student",
		"path":   `//course[cno="CS650"]/takenBy`,
		"values": []any{"SH1", "HTTP"},
	})
	if code != http.StatusOK {
		t.Fatalf("/update status = %d: %v", code, out)
	}
	rep := out["report"].(map[string]any)
	if rep["applied"] != true {
		t.Fatalf("/update not applied: %v", rep)
	}

	code, out = post(t, ts, "/query", map[string]any{"path": `//course[cno="CS650"]/takenBy/student`})
	if code != http.StatusOK || int(out["count"].(float64)) != before+1 {
		t.Fatalf("/query after update: status=%d count=%v want %d", code, out["count"], before+1)
	}

	code, out = get(t, ts, "/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats status = %d", code)
	}
	if out["updates_applied"].(float64) != 1 || out["queries"].(float64) < 2 {
		t.Errorf("/stats counters off: %v", out)
	}

	code, out = get(t, ts, "/healthz")
	if code != http.StatusOK || out["ok"] != true {
		t.Errorf("/healthz = %d %v", code, out)
	}
	if out["generation"].(float64) != 1 {
		t.Errorf("/healthz generation = %v, want 1", out["generation"])
	}
}

func TestHandlerBatchPrefixAndErrors(t *testing.T) {
	ts, _ := newTestServer(t, 5*time.Second) // side effects rejected

	mkIns := func(key string) map[string]any {
		return map[string]any{
			"kind": "insert", "type": "student",
			"path":   `//course[cno="CS650"]/takenBy`,
			"values": []any{key, "B"},
		}
	}
	sharedIns := map[string]any{
		"kind": "insert", "type": "course",
		"path":   `course[cno="CS650"]//course[cno="CS320"]/prereq`,
		"values": []any{"CS777", "Sharing"},
	}

	code, out := post(t, ts, "/batch", map[string]any{
		"updates": []any{mkIns("SH10"), sharedIns, mkIns("SH11")},
	})
	if code != http.StatusConflict {
		t.Fatalf("/batch with mid-batch side effect: status = %d, want 409: %v", code, out)
	}
	reps := out["reports"].([]any)
	if len(reps) != 2 {
		t.Fatalf("/batch reports = %d, want applied prefix + failing update", len(reps))
	}
	if reps[0].(map[string]any)["applied"] != true || reps[1].(map[string]any)["applied"] != false {
		t.Errorf("/batch prefix semantics violated: %v", reps)
	}

	// Error taxonomy over the wire.
	cases := []struct {
		path string
		body any
		want int
	}{
		{"/query", map[string]any{"path": `//course[`}, http.StatusBadRequest},
		{"/query", map[string]any{"bogus": 1}, http.StatusBadRequest},
		{"/update", sharedIns, http.StatusConflict},
		{"/update", map[string]any{"kind": "noop", "path": "x"}, http.StatusBadRequest},
		{"/update", map[string]any{"kind": "insert", "type": "student",
			"path": `//course/takenBy`, "values": []any{1.5}}, http.StatusBadRequest},
		{"/update", map[string]any{"kind": "insert", "type": "course",
			"path": `.`, "values": []any{"EE100", "Circuits"}}, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		if code, out := post(t, ts, c.path, c.body); code != c.want {
			t.Errorf("POST %s %v: status = %d, want %d (%v)", c.path, c.body, code, c.want, out)
		}
	}

	if resp, err := http.Get(ts.URL + "/query"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /query status = %d, want 405", resp.StatusCode)
		}
	}

	// An oversized body is a size-limit rejection (413), not bad JSON (400):
	// the payload is valid JSON that only reveals its size past the limit.
	huge := append(append([]byte(`{"path":"`), bytes.Repeat([]byte("x"), 2<<20)...), `"}`...)
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status = %d, want 413", resp.StatusCode)
	}
}

func TestHandlerPerRequestTimeout(t *testing.T) {
	ts, _ := newTestServer(t, time.Nanosecond, rxview.WithForceSideEffects())
	code, out := post(t, ts, "/update", map[string]any{
		"kind": "insert", "type": "student",
		"path":   `//course[cno="CS650"]/takenBy`,
		"values": []any{"ST1", "Timeout"},
	})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("/update under 1ns budget: status = %d, want 504: %v", code, out)
	}
	// The timed-out update must not have been applied.
	code, out = post(t, ts, "/query", map[string]any{"path": `//student[ssn="ST1"]`})
	if code != http.StatusGatewayTimeout && code != http.StatusOK {
		t.Fatalf("/query status = %d: %v", code, out)
	}
	if code == http.StatusOK && out["count"].(float64) != 0 {
		t.Error("timed-out update was applied")
	}
}

func TestListenAndServeGracefulShutdown(t *testing.T) {
	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		t.Fatal(err)
	}
	view, err := rxview.Open(atg, db, rxview.WithForceSideEffects())
	if err != nil {
		t.Fatal(err)
	}
	eng := server.New(view)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- server.ListenAndServe(ctx, addr, eng, server.HandlerOptions{Timeout: 5 * time.Second}) }()

	// Wait for the daemon to come up, then exercise one round-trip.
	var up bool
	for i := 0; i < 100; i++ {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			up = resp.StatusCode == http.StatusOK
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !up {
		cancel()
		t.Fatal("daemon did not come up")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ListenAndServe returned %v after graceful shutdown", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	// The engine was closed by the shutdown path.
	if _, err := eng.Update(context.Background(), rxview.Delete(`//student[ssn="none"]`)); err == nil {
		t.Error("engine still accepts writes after shutdown")
	}
}
