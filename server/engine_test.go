package server_test

// Black-box tests of the serving layer: the differential reader/writer
// stress test (every observed result must equal the sequential oracle's
// state at the generation the reader saw — snapshot consistency as a
// checkable property), concurrent-writer coalescing, and lifecycle.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"rxview"
	"rxview/server"
)

func mustRegistrarEngine(t *testing.T, opts ...rxview.Option) (*server.Engine, *rxview.View) {
	t.Helper()
	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		t.Fatal(err)
	}
	view, err := rxview.Open(atg, db, opts...)
	if err != nil {
		t.Fatal(err)
	}
	e := server.New(view)
	t.Cleanup(e.Close)
	return e, view
}

// render maps a node list to an order-independent fingerprint.
func render(nodes []rxview.Node) string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.String()
	}
	sort.Strings(out)
	return strings.Join(out, "|")
}

// TestStressPrefixConsistentReads is the linearizability-lite check: N
// readers hammer Query while a writer applies a recorded update script.
// A second, identical view applies the same script sequentially and records
// the expected result at every generation; every result a reader observes
// must match the oracle's result at the generation the snapshot carried —
// i.e. correspond exactly to some prefix of the write history. Run under
// -race this also exercises the snapshot-publication machinery.
func TestStressPrefixConsistentReads(t *testing.T) {
	ctx := context.Background()
	const nc, seed = 80, 7
	const q = `//C`

	open := func() (*rxview.View, *rxview.Synthetic) {
		syn, err := rxview.NewSynthetic(rxview.SyntheticConfig{NC: nc, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		view, err := rxview.Open(syn.ATG, syn.DB, rxview.WithForceSideEffects())
		if err != nil {
			t.Fatal(err)
		}
		return view, syn
	}
	liveView, syn := open()
	oracleView, _ := open()

	// Recorded script: fresh-key insertions under one published root,
	// interleaved with deletions of keys inserted two steps earlier, so
	// every update applies and every generation has a distinct reachable
	// state.
	roots := syn.Roots()
	if len(roots) == 0 {
		t.Fatal("synthetic dataset has no roots")
	}
	target := fmt.Sprintf(`//C[key="%d"]/sub`, roots[0])
	const nOps = 36
	keys := syn.FreshKeys(nOps)
	var script []rxview.Update
	for i := 0; i < nOps; i++ {
		if i%3 == 2 {
			script = append(script, rxview.Delete(fmt.Sprintf(`//C[key="%d"]`, keys[i-1])))
		} else {
			script = append(script, rxview.Insert(target, "C",
				rxview.Int(keys[i]), rxview.Str(fmt.Sprintf("s%d", i))))
		}
	}

	// Sequential oracle: expected fingerprint per generation.
	oracle := map[uint64]string{}
	snapshotOracle := func() {
		nodes, err := oracleView.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		oracle[oracleView.Generation()] = render(nodes)
	}
	snapshotOracle()
	for i, u := range script {
		rep, err := oracleView.Apply(ctx, u)
		if err != nil || !rep.Applied {
			t.Fatalf("oracle update %d (%s): applied=%v err=%v", i, u, rep.Applied, err)
		}
		snapshotOracle()
	}

	eng := server.New(liveView)
	defer eng.Close()

	const readers = 8
	done := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastGen uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				res, err := eng.Query(ctx, q)
				if err != nil {
					errc <- err
					return
				}
				if res.Generation < lastGen {
					errc <- fmt.Errorf("generation went backwards: %d after %d", res.Generation, lastGen)
					return
				}
				lastGen = res.Generation
				want, ok := oracle[res.Generation]
				if !ok {
					errc <- fmt.Errorf("observed generation %d outside the write history", res.Generation)
					return
				}
				if got := render(res.Nodes); got != want {
					errc <- fmt.Errorf("generation %d: observed state does not match the oracle prefix:\n got %s\nwant %s",
						res.Generation, got, want)
					return
				}
			}
		}()
	}

	for i, u := range script {
		rep, err := eng.Update(ctx, u)
		if err != nil || !rep.Applied {
			t.Fatalf("engine update %d (%s): applied=%v err=%v", i, u, rep != nil && rep.Applied, err)
		}
		// Read-your-writes: the snapshot covering an acknowledged update is
		// published before Update returns, so the sole writer sees its own
		// generation immediately.
		if got := eng.Generation(); got != uint64(i+1) {
			t.Fatalf("generation after update %d = %d, want %d (snapshot published after verdict?)", i, got, i+1)
		}
	}
	close(done)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	if got, want := eng.Generation(), oracleView.Generation(); got != want {
		t.Errorf("final generation %d, oracle %d", got, want)
	}
	res, err := eng.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if render(res.Nodes) != oracle[oracleView.Generation()] {
		t.Error("final engine state differs from the oracle")
	}
	if st := eng.Stats(); st.Queries == 0 || st.UpdatesApplied != uint64(nOps) {
		t.Errorf("stats: %+v (want %d applied, >0 queries)", st, nOps)
	}
}

// TestConcurrentWritersConverge submits commuting insertions from several
// goroutines at once — the shape the coalescer absorbs into Batch runs —
// and checks every submission gets exactly one applied verdict and the
// final state is exact.
func TestConcurrentWritersConverge(t *testing.T) {
	ctx := context.Background()
	eng, view := mustRegistrarEngine(t, rxview.WithForceSideEffects())

	base, err := eng.Query(ctx, `//student`)
	if err != nil {
		t.Fatal(err)
	}

	const writers, perWriter = 4, 20
	var wg sync.WaitGroup
	errc := make(chan error, writers*perWriter)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				u := rxview.Insert(`//course[cno="CS650"]/takenBy`, "student",
					rxview.Str(fmt.Sprintf("SW%d-%02d", w, i)), rxview.Str("Load"))
				rep, err := eng.Update(ctx, u)
				if err != nil {
					errc <- fmt.Errorf("writer %d update %d: %w", w, i, err)
					return
				}
				if !rep.Applied {
					errc <- fmt.Errorf("writer %d update %d not applied", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	after, err := eng.Query(ctx, `//student`)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(base.Nodes) + writers*perWriter; len(after.Nodes) != want {
		t.Errorf("students after concurrent writers = %d, want %d", len(after.Nodes), want)
	}
	st := eng.Stats()
	if st.UpdatesApplied != writers*perWriter {
		t.Errorf("UpdatesApplied = %d, want %d", st.UpdatesApplied, writers*perWriter)
	}
	t.Logf("coalescing: %d runs absorbed %d updates", st.CoalescedRuns, st.CoalescedUpdates)

	// Close the engine, then verify the underlying view directly: the
	// apply loop has stopped, so direct access is safe again.
	eng.Close()
	if err := view.CheckConsistency(); err != nil {
		t.Errorf("view inconsistent after concurrent load: %v", err)
	}
	if _, err := eng.Update(ctx, rxview.Delete(`//student[ssn="SW0-00"]`)); !errors.Is(err, server.ErrClosed) {
		t.Errorf("Update after Close = %v, want ErrClosed", err)
	}
}

// TestEngineBatchPrefixSemantics checks a client batch keeps View.Batch's
// documented behavior when routed through the loop.
func TestEngineBatchPrefixSemantics(t *testing.T) {
	ctx := context.Background()
	eng, _ := mustRegistrarEngine(t) // side effects rejected
	good := rxview.Insert(`//course[cno="CS650"]/takenBy`, "student", rxview.Str("SB1"), rxview.Str("Pre"))
	shared := rxview.Insert(`course[cno="CS650"]//course[cno="CS320"]/prereq`,
		"course", rxview.Str("CS777"), rxview.Str("Sharing"))
	never := rxview.Insert(`//course[cno="CS240"]/takenBy`, "student", rxview.Str("SB2"), rxview.Str("Post"))

	reps, err := eng.Batch(ctx, good, shared, never)
	if !errors.Is(err, rxview.ErrSideEffect) {
		t.Fatalf("batch error = %v, want ErrSideEffect", err)
	}
	if len(reps) != 2 || !reps[0].Applied || reps[1].Applied {
		t.Fatalf("prefix semantics violated: %+v", reps)
	}
	if res, _ := eng.Query(ctx, `//student[ssn="SB1"]`); len(res.Nodes) != 1 {
		t.Error("applied prefix not visible after failed batch")
	}
	if res, _ := eng.Query(ctx, `//student[ssn="SB2"]`); len(res.Nodes) != 0 {
		t.Error("suffix update ran after the failure")
	}
}
