package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rxview"
	"rxview/obs"
)

// ErrClosed is returned by submissions after Close.
var ErrClosed = errors.New("server: engine closed")

// Option configures an Engine.
type Option func(*config)

type config struct {
	queue       int
	maxCoalesce int
	memoCap     int
	highWater   int
	probeBase   time.Duration
	probeMax    time.Duration
}

// WithQueueDepth bounds the number of writes waiting for the apply loop.
// Default 256. Submissions beyond the shed watermark (by default the queue
// capacity itself) are refused with ErrOverloaded rather than blocked; see
// WithShedWatermark.
func WithQueueDepth(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.queue = n
		}
	}
}

// WithShedWatermark sets the queue depth at which admission control sheds
// new writes with ErrOverloaded instead of queuing them. Defaults to the
// queue capacity. Lower it below the capacity to start shedding before
// submitters ever block on the channel.
func WithShedWatermark(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.highWater = n
		}
	}
}

// WithRecoveryBackoff sets the base and cap of the jittered exponential
// backoff between degraded-mode recovery probes. Defaults: 25ms base, 2s
// cap.
func WithRecoveryBackoff(base, max time.Duration) Option {
	return func(c *config) {
		if base > 0 {
			c.probeBase = base
		}
		if max > 0 {
			c.probeMax = max
		}
	}
}

// WithMaxCoalesce caps how many consecutive insertions one Batch run may
// absorb. Default 64.
func WithMaxCoalesce(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.maxCoalesce = n
		}
	}
}

// WithQueryMemo sets how many distinct query texts the per-epoch result
// memo holds (default 256). The memo is rebuilt empty at every snapshot
// publication, so it only ever pays off across reads of the same epoch —
// exactly the repeated-hot-query case.
func WithQueryMemo(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.memoCap = n
		}
	}
}

// epoch is one published read unit: an immutable snapshot plus its result
// memo. The memo lives and dies with the snapshot, which makes (path,
// generation) the implicit memo key.
type epoch struct {
	sn   *rxview.Snapshot
	memo *resultMemo
}

// Engine wraps a View for concurrent serving: wait-free snapshot-isolated
// reads and a single-writer apply loop. See the package documentation for
// the consistency model. Create one with New; after that the View must not
// be used directly (the Engine owns it).
type Engine struct {
	view *rxview.View // xviewlint:writer-only
	cfg  config
	ep   atomic.Pointer[epoch]
	reqs chan *request

	mu     sync.RWMutex // guards closed vs. sends on reqs
	closed bool
	wg     sync.WaitGroup

	// met holds the engine's private obs registry and every counter,
	// gauge and histogram the hot paths record into; see metrics.go.
	met engineMetrics
	// committedGen is the view generation stamped at the last delivery —
	// the newest write any client has been acknowledged for. Readers
	// compare it against their epoch's generation for the lag histogram.
	committedGen atomic.Uint64

	// Overload and degraded-mode state; see overload.go.
	highWater  int             // queue depth at which admission sheds writes
	svcNanos   atomic.Int64    // EWMA per-request apply-loop service time, ns
	recovering atomic.Bool     // a recovery prober goroutine is live
	stopCtx    context.Context // canceled by Close; wakes the prober out of backoff
	stopCancel context.CancelFunc

	// primary, when non-nil, marks a read-only follower engine: client
	// writes are refused up front with *ReadOnlyReplicaError advertising
	// this address, and only replication exec steps reach the loop. See
	// replica.go.
	primary atomic.Pointer[string]
}

// request is one submission to the apply loop. Exactly one result is
// delivered on done (buffered), whether the update applies, no-ops, fails
// or is skipped as canceled.
type request struct {
	ctx     context.Context
	u       rxview.Update
	batch   []rxview.Update // non-nil: a client batch, prefix semantics
	tx      []rxview.Update // non-nil: an atomic group (all-or-nothing)
	exec    func() error    // non-nil: a replication step run verbatim on the loop
	recover bool            // a recovery probe: the loop calls View.Recover
	counted bool            // already tallied in the coalescing counters
	wait    obs.Span        // queue-wait span, opened at submit
	done    chan result
}

type result struct {
	rep  *rxview.Report
	reps []*rxview.Report
	gen  uint64 // generation of the published snapshot covering the verdict
	err  error
}

// New starts the serving layer over a view: it publishes the initial
// snapshot and launches the apply loop. The caller hands the view over —
// all further access must go through the Engine.
//
// xviewlint:writer-init
func New(view *rxview.View, opts ...Option) *Engine {
	cfg := config{queue: 256, maxCoalesce: 64, memoCap: 256,
		probeBase: 25 * time.Millisecond, probeMax: 2 * time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.highWater <= 0 {
		cfg.highWater = cfg.queue
	}
	e := &Engine{
		view:      view,
		cfg:       cfg,
		reqs:      make(chan *request, cfg.queue),
		met:       newEngineMetrics(),
		highWater: cfg.highWater,
	}
	//lint:ignore xviewlint/ctxflow the prober's lifetime is the engine's, not any request's; Close cancels it
	e.stopCtx, e.stopCancel = context.WithCancel(context.Background())
	e.ep.Store(&epoch{sn: view.Snapshot(), memo: newResultMemo(cfg.memoCap)})
	e.committedGen.Store(view.Generation())
	if view.Degraded() {
		// Booted into degraded mode (possible when the caller hands over a
		// view whose log already failed): start probing immediately.
		e.kickRecovery()
	}
	e.wg.Add(1)
	go e.run()
	return e
}

// Close stops accepting submissions, waits for the apply loop to drain and
// process everything already queued, and returns. A running recovery
// prober is stopped: a view still degraded at Close stays degraded, and
// the next Open recovers from the log instead. Idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.reqs)
	}
	e.mu.Unlock()
	e.stopCancel()
	e.wg.Wait()
}

// Snapshot returns the currently published epoch's snapshot. Never nil.
func (e *Engine) Snapshot() *rxview.Snapshot { return e.ep.Load().sn }

// Generation returns the published epoch's write-history prefix.
func (e *Engine) Generation() uint64 { return e.ep.Load().sn.Generation() }

// QueryResult carries a query's nodes together with the generation (write
// prefix) they were read at.
type QueryResult struct {
	Nodes      []rxview.Node
	Generation uint64
}

// Query evaluates an XPath expression against the current snapshot. It
// never blocks behind the apply loop: the result is exactly the view after
// the prefix of updates identified by QueryResult.Generation.
//
// Repeated queries of one epoch are served from the epoch's result memo
// (the path text is compiled at most once process-wide either way); a memo
// hit returns the same Node slice to every caller, which must treat it as
// read-only.
//
// xviewlint:hot-path
func (e *Engine) Query(ctx context.Context, path string) (QueryResult, error) {
	ep := e.ep.Load()
	e.met.queries.Inc()
	if nodes, ok := ep.memo.get(path); ok {
		// Memo hit: tens of nanoseconds end to end. Counters only — a span
		// (two clock reads) would multiply the cost of the hit itself, so
		// latency is observed where evaluation actually happens, below.
		e.met.memoHits.Inc()
		if err := ctx.Err(); err != nil {
			return QueryResult{}, err
		}
		return QueryResult{Nodes: nodes, Generation: ep.sn.Generation()}, nil
	}
	e.met.memoMisses.Inc()
	sp := obs.StartSpan(e.met.queryDur)
	if sp.Active() {
		// How stale is the epoch being read, in generations, against the
		// newest write any client has been acknowledged for?
		if lead, gen := e.committedGen.Load(), ep.sn.Generation(); lead > gen {
			e.met.readerLag.ObserveValue(float64(lead - gen))
		} else {
			e.met.readerLag.ObserveValue(0)
		}
	}
	nodes, err := ep.sn.Query(ctx, path)
	if err != nil {
		return QueryResult{Nodes: nodes, Generation: ep.sn.Generation()}, err
	}
	ep.memo.put(path, nodes)
	d := sp.End()
	e.met.slow.Record("query", path, d, ep.sn.Generation())
	return QueryResult{Nodes: nodes, Generation: ep.sn.Generation()}, nil
}

// Update submits one update to the apply loop and blocks until the loop
// delivers its verdict: the report and error are exactly what View.Apply
// would return. The snapshot covering the update is published before the
// verdict is delivered, so a caller whose Update returned applied reads its
// own write from the very next Query (read-your-writes). A context canceled
// while the update is still queued makes the loop skip it — it reports
// context.Canceled and is guaranteed not to have been applied; cancellation
// in-flight is honored by the pipeline's phase checks.
func (e *Engine) Update(ctx context.Context, u rxview.Update) (*rxview.Report, error) {
	rep, _, err := e.updateWithGen(ctx, u)
	return rep, err
}

// updateWithGen is Update returning also the generation of the snapshot
// published with the verdict — stamped by the apply loop at delivery, so it
// covers exactly this write's run and cannot include later clients' writes.
// The HTTP layer reports it per request.
func (e *Engine) updateWithGen(ctx context.Context, u rxview.Update) (*rxview.Report, uint64, error) {
	req := &request{ctx: ctx, u: u, done: make(chan result, 1)}
	if err := e.submit(ctx, req); err != nil {
		return nil, 0, err
	}
	res := <-req.done
	return res.rep, res.gen, res.err
}

// Batch submits a sequence of updates to be applied as one unit with
// View.Batch's prefix semantics, serialized against all other writes.
func (e *Engine) Batch(ctx context.Context, updates ...rxview.Update) ([]*rxview.Report, error) {
	reps, _, err := e.batchWithGen(ctx, updates...)
	return reps, err
}

// batchWithGen is Batch returning also the covering snapshot generation,
// stamped at delivery like updateWithGen.
func (e *Engine) batchWithGen(ctx context.Context, updates ...rxview.Update) ([]*rxview.Report, uint64, error) {
	if updates == nil {
		updates = []rxview.Update{}
	}
	req := &request{ctx: ctx, batch: updates, done: make(chan result, 1)}
	if err := e.submit(ctx, req); err != nil {
		return nil, 0, err
	}
	res := <-req.done
	return res.reps, res.gen, res.err
}

// Tx submits an atomic group of updates, serialized against all other
// writes: either every update applies — one deferred maintenance flush, one
// epoch published, the generation advanced by exactly 1 — or none does and
// the view is untouched. The reports cover the staged updates (ending, on
// failure, with the rejected one); the error is the group rejection, nil on
// commit. Unlike Batch there are no prefix effects to account for: a
// rejected group leaves nothing behind, and snapshot readers can never
// observe a partially applied group.
func (e *Engine) Tx(ctx context.Context, updates ...rxview.Update) ([]*rxview.Report, error) {
	reps, _, err := e.txWithGen(ctx, updates...)
	return reps, err
}

// txWithGen is Tx returning also the covering snapshot generation, stamped
// at delivery like updateWithGen.
func (e *Engine) txWithGen(ctx context.Context, updates ...rxview.Update) ([]*rxview.Report, uint64, error) {
	if updates == nil {
		updates = []rxview.Update{}
	}
	req := &request{ctx: ctx, tx: updates, done: make(chan result, 1)}
	if err := e.submit(ctx, req); err != nil {
		return nil, 0, err
	}
	res := <-req.done
	return res.reps, res.gen, res.err
}

// applyTx runs an atomic group through a view transaction. Called only from
// the apply loop. Any stage failure — a rejection dooming the group or a
// cancellation — aborts the whole group: all-or-nothing has no innocent
// members to retry, unlike the coalesced insert runs.
func (e *Engine) applyTx(ctx context.Context, updates []rxview.Update) ([]*rxview.Report, error) {
	tx, err := e.view.Begin(ctx)
	if err != nil {
		return nil, err
	}
	for _, u := range updates {
		if _, err := tx.Stage(ctx, u); err != nil {
			rbErr := tx.Rollback()
			e.met.txRejected.Inc()
			if rbErr != nil {
				return tx.Reports(), fmt.Errorf("server: tx rollback after %w: %w", err, rbErr)
			}
			return tx.Reports(), err
		}
	}
	if err := tx.Commit(ctx); err != nil {
		e.met.txRejected.Inc()
		return tx.Reports(), err
	}
	e.met.txCommits.Inc()
	return tx.Reports(), nil
}

// exec runs fn on the apply goroutine, serialized with every write, and
// publishes any epoch fn moved the view to. It is the follower's apply
// path: restores and streamed records go through the same single-writer
// loop as client writes, which is what keeps the writer-only discipline
// intact on replicas. Bypasses admission control like recovery probes —
// replication steps end staleness, so shedding them would be backwards.
func (e *Engine) exec(ctx context.Context, fn func() error) error {
	req := &request{ctx: ctx, exec: fn, done: make(chan result, 1)}
	if err := e.submit(ctx, req); err != nil {
		return err
	}
	res := <-req.done
	return res.err
}

// setPrimary flips the engine into read-only follower mode advertising the
// given primary address for redirected writes.
func (e *Engine) setPrimary(addr string) { e.primary.Store(&addr) }

// Primary returns the advertised primary address of a follower engine, or
// "" for a writable primary engine.
func (e *Engine) Primary() string {
	if p := e.primary.Load(); p != nil {
		return *p
	}
	return ""
}

func (e *Engine) submit(ctx context.Context, req *request) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	if req.exec == nil && !req.recover {
		if p := e.primary.Load(); p != nil {
			// A follower refuses client writes before they touch the queue;
			// the error carries where they belong.
			e.met.rejected.Inc()
			return &ReadOnlyReplicaError{Primary: *p}
		}
	}
	if !req.recover && req.exec == nil {
		// Admission control: shed rather than queue a write the loop cannot
		// serve in time. Recovery probes bypass it — they are what ends an
		// outage, and they must reach the loop even at full depth.
		deadline, ok := ctx.Deadline()
		if err := e.admit(deadline, ok); err != nil {
			e.met.shed.Inc()
			return err
		}
	}
	req.wait = obs.StartSpan(e.met.queueWait)
	e.met.depth.Add(1)
	select {
	case e.reqs <- req:
		return nil
	case <-ctx.Done():
		e.met.depth.Add(-1)
		return ctx.Err()
	}
}

// pickup accounts a request leaving the queue for the loop: the depth
// gauge drops and its queue wait lands in the histogram.
func (e *Engine) pickup(r *request) {
	e.met.depth.Add(-1)
	r.wait.End()
}

// run is the single-writer apply loop: it is the only goroutine that
// touches e.view after New, which is what makes the unsynchronized view
// safe. carry holds a request that gather pulled off the queue but could
// not coalesce.
//
// xviewlint:writer-loop
func (e *Engine) run() {
	defer e.wg.Done()
	var carry *request
	for {
		req := carry
		carry = nil
		if req == nil {
			var ok bool
			req, ok = <-e.reqs
			if !ok {
				return
			}
			e.pickup(req)
		}
		if req.recover {
			e.runRecover(req)
			continue
		}
		if req.exec != nil {
			// A replication step: run it verbatim, publish, deliver its
			// error. Publication is unconditional on success — a checkpoint
			// restore can replace the whole state without moving the
			// generation counter past the published epoch's.
			var err error
			if err = req.ctx.Err(); err == nil {
				err = req.exec()
			}
			if err == nil {
				e.republish()
			}
			e.deliver(req, result{err: err})
			continue
		}
		// A context that expired while the request sat in the queue is
		// skipped up front with a guaranteed-unapplied report — the same
		// contract processRun gives coalesced members, extended to the
		// direct-dispatch paths.
		if err := req.ctx.Err(); err != nil {
			e.deliver(req, queuedSkip(req, err))
			continue
		}
		t0 := time.Now()
		retired := 1
		switch {
		case req.tx != nil:
			// An atomic group: one transaction, and — on commit — exactly
			// one published epoch covering all of it. Readers observe the
			// pre-Begin snapshot until the post-commit one is swapped in;
			// a rejected group publishes nothing (the view didn't move).
			reps, err := e.applyTx(req.ctx, req.tx)
			stampPublish(e.publish(), reps...)
			e.deliver(req, result{reps: reps, err: err})
		case req.batch != nil:
			reps, err := e.view.Batch(req.ctx, req.batch...)
			stampPublish(e.publish(), reps...)
			e.deliver(req, result{reps: reps, err: err})
		case req.u.IsDelete():
			// Deletions read M and force a flush anyway; apply them alone
			// under their own context.
			rep, err := e.view.Apply(req.ctx, req.u)
			stampPublish(e.publish(), rep)
			e.deliver(req, result{rep: rep, err: err})
		default:
			var run []*request
			run, carry = e.gather(req)
			retired = len(run)
			e.processRun(run)
		}
		// Feed the admission controller's estimate of how fast the loop
		// retires queued requests.
		e.observeService(time.Since(t0), retired)
	}
}

// queuedSkip builds the verdict for a request whose context expired while
// it was still queued: unapplied reports in the shape the request's kind
// would have produced, and an error that restates the member's own cause
// (a deadline surfaces as DeadlineExceeded, not Canceled).
func queuedSkip(r *request, err error) result {
	switch {
	case r.tx != nil:
		return result{reps: unappliedReports(r.tx),
			err: fmt.Errorf("server: tx canceled while queued: %w", err)}
	case r.batch != nil:
		return result{reps: unappliedReports(r.batch),
			err: fmt.Errorf("server: batch canceled while queued: %w", err)}
	default:
		return result{rep: &rxview.Report{Op: r.u.String()},
			err: fmt.Errorf("server: %s: canceled while queued: %w", r.u, err)}
	}
}

// unappliedReports is one guaranteed-unapplied report per member, so a
// skipped group answers with the same shape as a processed one.
func unappliedReports(updates []rxview.Update) []*rxview.Report {
	reps := make([]*rxview.Report, len(updates))
	for i, u := range updates {
		reps[i] = &rxview.Report{Op: u.String()}
	}
	return reps
}

// gather collects the run of consecutive queued insertions starting at
// first, without blocking: it stops at the first queued deletion, client
// batch or atomic group (returned as carry for the next loop iteration),
// at an empty queue, or at the coalescing cap.
func (e *Engine) gather(first *request) (run []*request, carry *request) {
	run = []*request{first}
	for len(run) < e.cfg.maxCoalesce {
		select {
		case r, ok := <-e.reqs:
			if !ok {
				return run, nil
			}
			e.pickup(r)
			if r.batch == nil && r.tx == nil && r.exec == nil && !r.u.IsDelete() && !r.recover {
				run = append(run, r)
				continue
			}
			return run, r
		default:
			return run, nil
		}
	}
	return run, nil
}

// processRun applies a coalesced run of insertions through View.Batch while
// preserving per-update independence — each member gets exactly the verdict
// a lone View.Apply would have produced:
//
//   - members whose context is already canceled are skipped up front and
//     report context.Canceled, unapplied;
//   - a mid-run rejection (side effect, non-updatable, parse) is delivered
//     to the failing member only; the members after it re-run;
//   - the run executes under a context that cancels as soon as ANY member's
//     context cancels, so in-flight cancellation is honored; if the abort
//     lands on a member whose own context is still live, that member and
//     the rest re-run (the canceled one is dropped by the next round's
//     skip pass).
//
// Coalescing is what makes the deferred ∆(M,L) flush amortize across
// independent submissions: one maintenance flush per run instead of one per
// update.
func (e *Engine) processRun(run []*request) {
	for len(run) > 0 {
		live := run[:0]
		for _, r := range run {
			if err := r.ctx.Err(); err != nil {
				e.deliver(r, result{
					rep: &rxview.Report{Op: r.u.String()},
					err: fmt.Errorf("server: %s: canceled while queued: %w", r.u, err),
				})
				continue
			}
			live = append(live, r)
		}
		if len(live) == 0 {
			return
		}
		if len(live) == 1 {
			r := live[0]
			rep, err := e.view.Apply(r.ctx, r.u)
			stampPublish(e.publish(), rep)
			e.deliver(r, result{rep: rep, err: err})
			return
		}

		e.met.coalRuns.Inc()
		e.met.runSize.ObserveValue(float64(len(live)))
		for _, r := range live {
			// Count each update once, however many retry rounds it rides
			// through; CoalescedRuns counts Batch calls, so the two stay a
			// meaningful updates-per-run ratio.
			if !r.counted {
				r.counted = true
				e.met.coalUpds.Inc()
			}
		}
		//lint:ignore xviewlint/ctxflow the run context is the merge of every rider's ctx: it must outlive any single one and is canceled via AfterFunc when any rider cancels
		runCtx, cancel := context.WithCancel(context.Background())
		stops := make([]func() bool, len(live))
		updates := make([]rxview.Update, len(live))
		for i, r := range live {
			updates[i] = r.u
			stops[i] = context.AfterFunc(r.ctx, cancel)
		}
		reps, err := e.view.Batch(runCtx, updates...)
		for _, stop := range stops {
			stop()
		}
		cancel()
		// Publish before fulfilling any promise: a writer whose Update has
		// returned must be able to read its own write (and its generation)
		// from the very next Query.
		stampPublish(e.publish(), reps...)

		if err == nil {
			for i, r := range live {
				e.deliver(r, result{rep: reps[i]})
			}
			return
		}
		// The batch stopped at one member: reports cover the applied prefix
		// plus, last, the member that failed.
		k := len(reps)
		if k == 0 || k > len(live) {
			// Cannot attribute (should not happen); fail the remainder.
			for _, r := range live {
				e.deliver(r, result{err: err})
			}
			return
		}
		for i := 0; i < k-1; i++ {
			e.deliver(live[i], result{rep: reps[i]})
		}
		failing := live[k-1]
		if isCtxErr(err) {
			if ownErr := failing.ctx.Err(); ownErr != nil {
				// The stop landed on the member whose context fired. The
				// shared run context is always a plain cancel, so restate
				// the member's own cause (a deadline must surface as
				// DeadlineExceeded, not Canceled).
				e.deliver(failing, result{rep: reps[k-1],
					err: fmt.Errorf("server: %s: %w", failing.u, ownErr)})
				run = live[k:]
				continue
			}
			// Another member's cancellation tripped the shared run context;
			// the member at the stop point did nothing wrong. Re-run it and
			// everything after it.
			run = live[k-1:]
			continue
		}
		e.deliver(failing, result{rep: reps[k-1], err: err})
		run = live[k:]
	}
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// deliver fulfills a request's promise exactly once, stamps the covering
// generation, and keeps the applied / rejected counters and the slow-
// commit log. Called only from the apply loop, always after the snapshot
// covering the verdict has been published.
func (e *Engine) deliver(r *request, res result) {
	res.gen = e.view.Generation()
	e.committedGen.Store(res.gen)
	if res.err != nil {
		e.met.rejected.Inc()
		if errors.Is(res.err, rxview.ErrDegraded) {
			// The view just flipped (or was already) read-only; make sure a
			// prober is working on getting it back.
			e.kickRecovery()
		}
	}
	var total time.Duration
	var op string
	count := func(rep *rxview.Report) {
		if rep != nil && rep.Applied {
			e.met.applied.Inc()
			total += rep.Timings.Total()
			op = rep.Op
		}
	}
	count(res.rep)
	for _, rep := range res.reps {
		count(rep)
	}
	// Total() is built from the pipeline's own phase clocks, so the slow-
	// commit check costs no time.Now on the apply loop.
	e.met.slow.Record("commit", op, total, res.gen)
	r.done <- res
}

// publish seals and swaps in a fresh epoch if the view moved, returning
// the publication duration (zero when nothing swapped, or when timing
// instrumentation is disabled). Called only from the apply loop. Sealing
// is O(Δ) in the write just applied — the copy-on-write snapshot shares
// all untouched state with the previous epoch — so publication cost
// tracks update size, not view size.
func (e *Engine) publish() time.Duration {
	if e.ep.Load().sn.Generation() == e.view.Generation() {
		return 0
	}
	sp := obs.StartSpan(e.met.publishDur)
	e.ep.Store(&epoch{sn: e.view.Snapshot(), memo: newResultMemo(e.cfg.memoCap)})
	d := sp.End()
	e.met.snapSwaps.Inc()
	rxview.ObservePublish(d)
	return d
}

// republish seals and swaps in a fresh epoch unconditionally — the
// replication-step variant of publish, where state can change under an
// unchanged generation. Called only from the apply loop.
func (e *Engine) republish() {
	sp := obs.StartSpan(e.met.publishDur)
	e.ep.Store(&epoch{sn: e.view.Snapshot(), memo: newResultMemo(e.cfg.memoCap)})
	d := sp.End()
	e.met.snapSwaps.Inc()
	rxview.ObservePublish(d)
}

// Stats describes the serving layer: the published epoch's view statistics
// plus the engine's counters.
type Stats struct {
	View             rxview.Stats `json:"view"`
	Generation       uint64       `json:"generation"`
	Queries          uint64       `json:"queries"`
	UpdatesApplied   uint64       `json:"updates_applied"`
	UpdatesRejected  uint64       `json:"updates_rejected"`
	TxCommitted      uint64       `json:"tx_committed"`
	TxRejected       uint64       `json:"tx_rejected"`
	CoalescedRuns    uint64       `json:"coalesced_runs"`
	CoalescedUpdates uint64       `json:"coalesced_updates"`
	SnapshotSwaps    uint64       `json:"snapshot_swaps"`
	QueueDepth       int64        `json:"queue_depth"`
	// WritesShed counts writes refused by admission control (HTTP 429);
	// Degraded reports the view's current read-only state; Recoveries
	// counts successful degraded→read-write transitions.
	WritesShed uint64 `json:"writes_shed"`
	Degraded   bool   `json:"degraded"`
	Recoveries uint64 `json:"recoveries"`
	// ReadOnly marks a follower engine; Primary is the address its refused
	// writes advertise (HTTP 421).
	ReadOnly bool   `json:"read_only,omitempty"`
	Primary  string `json:"primary,omitempty"`
	// QueryMemoHits / QueryMemoMisses count Engine.Query calls served from
	// (respectively past) the per-epoch result memo.
	QueryMemoHits   uint64 `json:"query_memo_hits"`
	QueryMemoMisses uint64 `json:"query_memo_misses"`
	// PathCacheHits / PathCacheMisses are the process-wide compiled-path
	// cache counters (shared with every view in the process).
	PathCacheHits   uint64 `json:"path_cache_hits"`
	PathCacheMisses uint64 `json:"path_cache_misses"`
}

// Stats reads the current serving statistics. Safe for concurrent use.
func (e *Engine) Stats() Stats {
	sn := e.ep.Load().sn
	pcHits, pcMisses := rxview.PathCacheStats()
	return Stats{
		View:             sn.Stats(),
		Generation:       sn.Generation(),
		Queries:          e.met.queries.Value(),
		UpdatesApplied:   e.met.applied.Value(),
		UpdatesRejected:  e.met.rejected.Value(),
		TxCommitted:      e.met.txCommits.Value(),
		TxRejected:       e.met.txRejected.Value(),
		CoalescedRuns:    e.met.coalRuns.Value(),
		CoalescedUpdates: e.met.coalUpds.Value(),
		SnapshotSwaps:    e.met.snapSwaps.Value(),
		QueueDepth:       e.met.depth.Value(),
		WritesShed:       e.met.shed.Value(),
		Degraded:         e.Degraded(),
		Recoveries:       e.met.recoveries.Value(),
		ReadOnly:         e.Primary() != "",
		Primary:          e.Primary(),
		QueryMemoHits:    e.met.memoHits.Value(),
		QueryMemoMisses:  e.met.memoMisses.Value(),
		PathCacheHits:    pcHits,
		PathCacheMisses:  pcMisses,
	}
}
