package server_test

// Tests of the replication runtime: end-to-end primary/follower convergence
// over HTTP, a differential stress run against a sequential oracle (prefix
// consistency — every follower read at generation g matches the primary's
// state after exactly g writes), follower kill-and-restart catch-up, the
// "following" readiness state, the 421 write-refusal contract, and
// multi-tenant registry isolation.

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rxview"
	"rxview/server"
)

// mustPrimary opens a durable registrar view, wraps it in an engine, and
// serves it — replication endpoints included — over httptest. A short
// stream window keeps the long-poll cycles fast under test.
func mustPrimary(t *testing.T, opts ...rxview.Option) (*httptest.Server, *server.Engine, *rxview.View) {
	t.Helper()
	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := rxview.ParseFsyncPolicy("off")
	if err != nil {
		t.Fatal(err)
	}
	base := []rxview.Option{
		rxview.WithForceSideEffects(), // churn deletes are side-effecting
		rxview.WithDurability(t.TempDir()),
		rxview.WithFsync(pol),
		rxview.WithCheckpointEvery(1 << 20), // keep every record on the stream
	}
	view, err := rxview.Open(atg, db, append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { view.Close() })
	src, err := view.ReplSource()
	if err != nil {
		t.Fatal(err)
	}
	eng := server.New(view)
	t.Cleanup(eng.Close)
	ts := httptest.NewServer(server.NewHandler(eng, server.HandlerOptions{
		Timeout:      5 * time.Second,
		Repl:         src,
		StreamWindow: 50 * time.Millisecond,
	}))
	t.Cleanup(ts.Close)
	return ts, eng, view
}

// mustFollower boots a follower of the given primary URL over a fresh
// registrar schema. The caller owns Close.
func mustFollower(t *testing.T, primary string, opts ...server.ReplicaOption) *server.Replica {
	t.Helper()
	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rxview.OpenReplica(atg, db, rxview.WithForceSideEffects())
	if err != nil {
		t.Fatal(err)
	}
	base := []server.ReplicaOption{
		server.WithPollWindow(50 * time.Millisecond),
		server.WithFollowBackoff(time.Millisecond, 50*time.Millisecond),
	}
	return server.NewReplica(rep, primary, append(base, opts...)...)
}

// waitConverged blocks until the follower has replayed through target.
func waitConverged(t *testing.T, f *server.Replica, target uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for f.Status().Generation < target {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at generation %d, want %d", f.Status().Generation, target)
		}
		time.Sleep(500 * time.Microsecond)
	}
}

// engineFingerprint captures an engine's externally observable state from
// its published snapshot: generation plus the serialized view.
func engineFingerprint(t *testing.T, e *server.Engine) string {
	t.Helper()
	sn := e.Snapshot()
	xml, err := sn.XML(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("gen=%d\n%s", sn.Generation(), xml)
}

// churnUpdate returns the i-th update of a deterministic, endlessly
// applicable write sequence against the registrar dataset.
func churnUpdate(i int) rxview.Update {
	if i%2 == 0 {
		return rxview.Insert(`//course[cno="CS650"]/takenBy`, "student",
			rxview.Str(fmt.Sprintf("SR%d", i)), rxview.Str("Repl"))
	}
	return rxview.Delete(fmt.Sprintf(`//student[sno="SR%d"]`, i-1))
}

// TestReplicaFollowsPrimary: the basic loop — writes land on the primary,
// a follower converges through the change-log stream, the states match
// byte for byte, and the follower refuses writes with the 421 contract.
func TestReplicaFollowsPrimary(t *testing.T) {
	ts, eng, _ := mustPrimary(t)
	for i := 0; i < 8; i++ {
		if _, err := eng.Update(t.Context(), churnUpdate(i)); err != nil {
			t.Fatal(err)
		}
	}

	f := mustFollower(t, ts.URL)
	defer f.Close()
	waitConverged(t, f, eng.Generation())

	if p, q := engineFingerprint(t, eng), engineFingerprint(t, f.Engine()); p != q {
		t.Errorf("fingerprint mismatch after convergence:\nprimary:\n%s\nfollower:\n%s", p, q)
	}
	st := f.Status()
	if !st.Following || st.Lag != 0 || st.Primary != ts.URL {
		t.Errorf("Status after convergence = %+v", st)
	}

	// Writes are refused with the typed error carrying the primary address...
	_, err := f.Engine().Update(t.Context(), churnUpdate(100))
	if err == nil || !isReadOnly(err) {
		t.Fatalf("follower Update error = %v, want ErrReadOnlyReplica", err)
	}
	// ...which the HTTP layer turns into 421 + the redirect headers.
	fts := httptest.NewServer(server.NewHandler(f.Engine(), server.HandlerOptions{
		Timeout: 5 * time.Second,
		Follow:  f.Status,
	}))
	defer fts.Close()
	code, out := post(t, fts, "/update", map[string]any{
		"kind": "insert", "type": "student",
		"path":   `//course[cno="CS650"]/takenBy`,
		"values": []any{"SX", "X"},
	})
	if code != http.StatusMisdirectedRequest {
		t.Fatalf("follower /update status = %d %v, want 421", code, out)
	}
	if out["primary"] != ts.URL {
		t.Errorf("421 primary = %v, want %s", out["primary"], ts.URL)
	}
}

func isReadOnly(err error) bool {
	var ro *server.ReadOnlyReplicaError
	return errors.As(err, &ro) && errors.Is(err, server.ErrReadOnlyReplica)
}

// TestReplicaDifferentialStress runs a sequential writer against the
// primary while concurrent readers hammer two followers, and checks every
// sampled read against a per-generation oracle recorded as the writes were
// acknowledged: a result observed at generation g must equal the oracle's
// count at g (prefix consistency), and observed generations must never run
// ahead of the primary or backwards per reader.
func TestReplicaDifferentialStress(t *testing.T) {
	const writes = 120
	ts, eng, _ := mustPrimary(t)

	// Oracle: student count under CS650 per primary generation, recorded by
	// the (sole) writer as each write is acknowledged — a rejected write
	// leaves the generation alone and just rewrites the same slot. Readers
	// only index below the atomic high water mark, so no locks are needed.
	oracle := make([]int, writes+1)
	var oracleLen atomic.Uint64
	const path = `//course[cno="CS650"]/takenBy/student`
	base, err := eng.Query(t.Context(), path)
	if err != nil {
		t.Fatal(err)
	}
	oracle[0] = len(base.Nodes)
	oracleLen.Store(1)

	followers := []*server.Replica{mustFollower(t, ts.URL), mustFollower(t, ts.URL)}
	defer func() {
		for _, f := range followers {
			f.Close()
		}
	}()

	var (
		wg       sync.WaitGroup
		done     atomic.Bool
		failures atomic.Int64
		checked  atomic.Int64
	)
	errf := func(format string, args ...any) {
		if failures.Add(1) <= 5 {
			t.Errorf(format, args...)
		}
	}
	for ri, f := range followers {
		wg.Add(1)
		go func(ri int, e *server.Engine) {
			defer wg.Done()
			var lastGen uint64
			for !done.Load() {
				res, err := e.Query(t.Context(), path)
				if err != nil {
					errf("reader %d: %v", ri, err)
					return
				}
				if res.Generation < lastGen {
					errf("reader %d: generation went backwards %d -> %d", ri, lastGen, res.Generation)
				}
				lastGen = res.Generation
				if res.Generation >= oracleLen.Load() {
					// The follower can never run ahead of an acknowledged
					// primary write.
					errf("reader %d: read at generation %d ahead of the oracle (%d)", ri, res.Generation, oracleLen.Load())
					continue
				}
				if want := oracle[res.Generation]; len(res.Nodes) != want {
					errf("reader %d: at generation %d saw %d students, oracle says %d", ri, res.Generation, len(res.Nodes), want)
				}
				checked.Add(1)
			}
		}(ri, f.Engine())
	}

	for i := 0; i < writes; i++ {
		if _, err := eng.Update(t.Context(), churnUpdate(i)); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Query(t.Context(), path)
		if err != nil {
			t.Fatal(err)
		}
		oracle[res.Generation] = len(res.Nodes)
		oracleLen.Store(res.Generation + 1)
	}
	for _, f := range followers {
		waitConverged(t, f, eng.Generation())
	}
	done.Store(true)
	wg.Wait()

	if checked.Load() == 0 {
		t.Error("readers validated no samples")
	}
	want := engineFingerprint(t, eng)
	for i, f := range followers {
		if got := engineFingerprint(t, f.Engine()); got != want {
			t.Errorf("follower %d final fingerprint diverged", i)
		}
	}
}

// TestReplicaKillAndRestart: a follower is killed mid-stream (Close is the
// in-process SIGKILL — no graceful handoff to the primary), the primary
// keeps writing, and a fresh follower booted later re-syncs from the
// checkpoint+stream and converges to an identical fingerprint.
func TestReplicaKillAndRestart(t *testing.T) {
	ts, eng, _ := mustPrimary(t)
	for i := 0; i < 10; i++ {
		if _, err := eng.Update(t.Context(), churnUpdate(i)); err != nil {
			t.Fatal(err)
		}
	}
	f := mustFollower(t, ts.URL)
	waitConverged(t, f, eng.Generation())
	f.Close()

	// The primary moves on while the follower is down.
	for i := 10; i < 30; i++ {
		if _, err := eng.Update(t.Context(), churnUpdate(i)); err != nil {
			t.Fatal(err)
		}
	}

	f2 := mustFollower(t, ts.URL)
	defer f2.Close()
	waitConverged(t, f2, eng.Generation())
	if p, q := engineFingerprint(t, eng), engineFingerprint(t, f2.Engine()); p != q {
		t.Errorf("restarted follower fingerprint diverged:\nprimary:\n%s\nfollower:\n%s", p, q)
	}
}

// TestHealthzFollowing: a handler with a Follow source reports 503
// "following" until the follower is inside its watermark, then ready; the
// lag is surfaced either way. Driven through a fake status so the
// transition is deterministic.
func TestHealthzFollowing(t *testing.T) {
	eng, _ := mustRegistrarEngine(t)
	var lagging atomic.Bool
	lagging.Store(true)
	status := func() server.FollowStatus {
		if lagging.Load() {
			return server.FollowStatus{Lag: 40, Watermark: 8, Following: false}
		}
		return server.FollowStatus{Lag: 1, Watermark: 8, Following: true}
	}
	ts := httptest.NewServer(server.NewHandler(eng, server.HandlerOptions{
		Timeout: 5 * time.Second,
		Follow:  status,
	}))
	defer ts.Close()

	code, out := get(t, ts, "/healthz")
	if code != http.StatusServiceUnavailable || out["state"] != "following" || out["lag"] != float64(40) {
		t.Errorf("/healthz lagging = %d %v, want 503 following lag=40", code, out)
	}
	if code, _ := get(t, ts, "/livez"); code != http.StatusOK {
		t.Errorf("/livez while following != 200")
	}
	lagging.Store(false)
	code, out = get(t, ts, "/healthz")
	if code != http.StatusOK || out["ok"] != true {
		t.Errorf("/healthz caught up = %d %v, want 200", code, out)
	}

	// Gate integration: the same status source drives the gate's state.
	lagging.Store(true)
	g := server.NewGate("loading")
	g.SetReady(eng, server.HandlerOptions{Timeout: 5 * time.Second, Follow: status})
	if got := g.State(); got != "following" {
		t.Errorf("Gate state while lagging = %q, want following", got)
	}
	lagging.Store(false)
	if got := g.State(); got != "ready" {
		t.Errorf("Gate state caught up = %q, want ready", got)
	}
}

// TestRegistryMultiTenant hosts three named views — two independent
// primaries and a follower of the first, all behind one mux — and checks
// routing, per-view generation and metric isolation, the /views index, the
// aggregate health roll-up, and the 421 contract through the /v/ prefix.
func TestRegistryMultiTenant(t *testing.T) {
	reg := server.NewRegistry()
	ga, gb, gc := server.NewGate("loading"), server.NewGate("loading"), server.NewGate("loading")
	for name, g := range map[string]*server.Gate{"alpha": ga, "beta": gb, "mirror": gc} {
		if err := reg.Add(name, g); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(reg)
	defer ts.Close()

	// While everything still boots the index lists all three and the
	// aggregate readiness refuses traffic.
	code, out := get(t, ts, "/views")
	if code != http.StatusOK || len(out["views"].([]any)) != 3 {
		t.Fatalf("/views during boot = %d %v", code, out)
	}
	if code, _ := get(t, ts, "/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("aggregate /healthz during boot != 503")
	}
	if code, _ := post(t, ts, "/v/alpha/query", map[string]any{"path": "//course"}); code != http.StatusServiceUnavailable {
		t.Errorf("/v/alpha/query during boot != 503")
	}
	if code, _ := post(t, ts, "/v/nosuch/query", map[string]any{"path": "//course"}); code != http.StatusNotFound {
		t.Errorf("unknown view != 404")
	}

	// alpha: a durable primary with replication endpoints.
	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		t.Fatal(err)
	}
	pol, _ := rxview.ParseFsyncPolicy("off")
	va, err := rxview.Open(atg, db, rxview.WithDurability(t.TempDir()), rxview.WithFsync(pol))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { va.Close() })
	src, err := va.ReplSource()
	if err != nil {
		t.Fatal(err)
	}
	ea := server.New(va)
	t.Cleanup(ea.Close)
	ga.SetReady(ea, server.HandlerOptions{
		Timeout: 5 * time.Second, Repl: src, StreamWindow: 50 * time.Millisecond,
		PrivateMetricsOnly: true,
	})

	// beta: an in-memory primary, fully independent.
	eb, _ := mustRegistrarEngine(t)
	gb.SetReady(eb, server.HandlerOptions{Timeout: 5 * time.Second, PrivateMetricsOnly: true})

	// mirror: follows alpha through the registry's own /v/alpha prefix —
	// the stream and checkpoint endpoints must route like everything else.
	f := mustFollower(t, ts.URL+"/v/alpha")
	t.Cleanup(f.Close)
	gc.SetReady(f.Engine(), server.HandlerOptions{
		Timeout: 5 * time.Second, Follow: f.Status, PrivateMetricsOnly: true,
	})

	// Writes to alpha move only alpha (and, async, its mirror).
	genB := eb.Generation()
	for i := 0; i < 5; i++ {
		if code, out := post(t, ts, "/v/alpha/update", map[string]any{
			"kind": "insert", "type": "student",
			"path":   `//course[cno="CS650"]/takenBy`,
			"values": []any{fmt.Sprintf("SM%d", i), "Multi"},
		}); code != http.StatusOK {
			t.Fatalf("/v/alpha/update = %d %v", code, out)
		}
	}
	if ea.Generation() == 0 || eb.Generation() != genB {
		t.Errorf("generation isolation broken: alpha=%d beta=%d (want beta unchanged at %d)",
			ea.Generation(), eb.Generation(), genB)
	}
	waitConverged(t, f, ea.Generation())
	if p, q := engineFingerprint(t, ea), engineFingerprint(t, f.Engine()); p != q {
		t.Error("mirror diverged from alpha through registry routing")
	}

	// A write through the mirror is misdirected, and the advertised primary
	// is alpha's prefixed URL.
	code, out = post(t, ts, "/v/mirror/update", map[string]any{
		"kind": "insert", "type": "student",
		"path":   `//course[cno="CS650"]/takenBy`,
		"values": []any{"SZ", "Z"},
	})
	if code != http.StatusMisdirectedRequest || out["primary"] != ts.URL+"/v/alpha" {
		t.Errorf("/v/mirror/update = %d %v, want 421 primary=%s/v/alpha", code, out, ts.URL)
	}

	// All ready: the aggregate health rolls up green and names each view.
	code, out = get(t, ts, "/healthz")
	if code != http.StatusOK || out["ok"] != true {
		t.Errorf("aggregate /healthz all-ready = %d %v", code, out)
	}

	// Metric isolation: alpha's scrape reflects its own writes, beta's
	// counter stayed put, and the top-level scrape carries only the
	// process-wide families — no tenant's engine counters leak up.
	ma := rawGet(t, ts, "/v/alpha/metrics")
	mb := rawGet(t, ts, "/v/beta/metrics")
	top := rawGet(t, ts, "/metrics")
	if !strings.Contains(ma, "xview_engine_updates_applied_total 5") {
		t.Errorf("alpha metrics missing its update count:\n%s", ma)
	}
	if !strings.Contains(mb, "xview_engine_updates_applied_total 0") {
		t.Errorf("beta metrics not isolated:\n%s", mb)
	}
	if strings.Contains(top, "xview_engine_updates_applied_total") {
		t.Errorf("tenant engine families leaked into the registry's top-level /metrics")
	}
}

// rawGet fetches a path and returns the body verbatim (for /metrics).
func rawGet(t *testing.T, ts *httptest.Server, path string) string {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d:\n%s", path, resp.StatusCode, body)
	}
	return string(body)
}
