package rxview

import (
	"context"
	"time"

	"rxview/internal/core"
)

// Generation counts the write units committed to the view since Open: it
// increments exactly once per applied insertion or deletion (Apply, and
// each applied member of a non-atomic Batch) and exactly once per committed
// Begin transaction, however many updates it staged — never for rejected,
// skipped, no-op, rolled-back or dry-run updates. A Snapshot carries the
// generation it was taken at, so an observed query result can be attributed
// to an exact prefix of the write history; an atomic group occupies a
// single generation step, so no snapshot can expose part of one.
func (v *View) Generation() uint64 { return v.sys.Generation() }

// Snapshot freezes the current view state into an immutable epoch: the
// DAG-compressed view and the topological order L, sealed together at the
// current generation (the reachability matrix M is captured as its size —
// queries evaluate without it). The snapshot answers queries, renders
// statistics and serializes XML without touching the live view, so any
// number of goroutines may share one Snapshot while the view keeps
// applying updates.
//
// Sealing is copy-on-write: its cost is proportional to what changed since
// the previous Snapshot call (O(Δ)), not to the view size — unchanged
// state is shared between the live view and every sealed epoch, which is
// what lets a serving layer publish a fresh snapshot per applied write.
// CloneSnapshot is the deep-copy equivalent.
//
// Taking the snapshot itself is a read of the live view and must not run
// concurrently with Apply/Batch on the same View — a View is single-writer.
// The server package's Engine does exactly that serialization: its apply
// loop snapshots after each write and publishes the result atomically, which
// is how reads become wait-free under write load.
//
// Snapshot panics while a Begin transaction is open: an epoch must never
// expose staged-but-uncommitted state. Commit or roll back first (the
// Engine publishes only between write units, so it can never hit this).
func (v *View) Snapshot() *Snapshot {
	return &Snapshot{sn: v.sys.Snapshot()}
}

// CloneSnapshot freezes the current view state by deep copy — O(n) in the
// view size, where Snapshot is O(Δ). The two answer identically at the
// same generation; CloneSnapshot exists as the full-copy baseline: the
// oracle in copy-on-write aliasing tests and the comparison point in the
// snapshot-publication benchmarks. Serving layers should use Snapshot.
func (v *View) CloneSnapshot() *Snapshot {
	return &Snapshot{sn: v.sys.CloneSnapshot()}
}

// PathCacheStats returns the hit/miss counters of the process-wide
// compiled-path cache that View.Query, Snapshot.Query and the server
// handlers parse through. Monotone; shared by every view in the process.
func PathCacheStats() (hits, misses uint64) { return core.PathCacheStats() }

// ObservePublish records one epoch publication (snapshot seal + pointer
// swap) into the pipeline's phase telemetry, completing the paper's phase
// breakdown for a serving layer. The library itself publishes no epochs,
// so only layers that seal snapshots — the server package's Engine —
// should call it, once per publication. A no-op while telemetry is
// disabled.
func ObservePublish(d time.Duration) { core.ObservePublish(d) }

// Snapshot is an immutable copy of a View at one generation. All methods
// are safe for concurrent use by any number of goroutines. See
// View.Snapshot.
type Snapshot struct {
	sn *core.Snapshot
}

// Generation returns the write-history prefix this snapshot reflects.
func (s *Snapshot) Generation() uint64 { return s.sn.Generation() }

// Query evaluates an XPath expression against the frozen state and returns
// the selected nodes r[[p]] — the same fragment and semantics as
// View.Query, at this snapshot's epoch. The path text is compiled through
// the process-wide compiled-path cache: a hot query parses once, and a
// malformed one fails fast on its cached error without allocating an
// evaluator.
func (s *Snapshot) Query(ctx context.Context, path string) ([]Node, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p, err := core.ParsePath(path)
	if err != nil {
		return nil, parseErr(path, err)
	}
	res, err := s.sn.Eval(p)
	if err != nil {
		return nil, err
	}
	return nodesOf(s.sn.DAG(), s.sn.Text(), res.Selected), nil
}

// Stats computes the frozen view's statistics.
func (s *Snapshot) Stats() Stats { return statsOf(s.sn.Stats()) }

// XML returns the serialized frozen view; maxNodes bounds the unfolded
// tree size.
func (s *Snapshot) XML(maxNodes int) (string, error) { return s.sn.XML(maxNodes) }
