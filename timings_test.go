package rxview

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestTimingsTotalEqualsPhaseSum pins the Total() contract: it is the sum
// of the top-level phases — Validate, Eval, Translate, Apply, Maintain,
// Publish — with XToDV and DVToDR excluded as sub-phases of Translate.
// Built by reflection over the struct so a future phase field that is
// neither added to Total nor named a sub-phase fails here instead of
// silently skewing every latency report.
func TestTimingsTotalEqualsPhaseSum(t *testing.T) {
	subPhases := map[string]bool{"XToDV": true, "DVToDR": true}

	// Distinct primes per field so no accidental cancellation can hide a
	// dropped or double-counted term.
	primes := []time.Duration{2, 3, 5, 7, 11, 13, 17, 19, 23, 29}
	var tm Timings
	v := reflect.ValueOf(&tm).Elem()
	var want time.Duration
	for i := 0; i < v.NumField(); i++ {
		f := v.Type().Field(i)
		d := primes[i%len(primes)] * time.Millisecond
		v.Field(i).Set(reflect.ValueOf(d))
		if !subPhases[f.Name] {
			want += d
		}
	}
	if got := tm.Total(); got != want {
		t.Errorf("Total() = %v, want sum of non-sub-phase fields %v", got, want)
	}
}

// TestTimingsJSONTagParity: every Timings field marshals under an explicit
// snake_case tag ending in _ns (durations are integer nanoseconds on the
// wire), and the rendered JSON exposes exactly those keys — including the
// serving-layer publish_ns phase.
func TestTimingsJSONTagParity(t *testing.T) {
	typ := reflect.TypeOf(Timings{})
	wantKeys := make(map[string]bool, typ.NumField())
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		tag := f.Tag.Get("json")
		name := strings.Split(tag, ",")[0]
		switch {
		case name == "" || name == "-":
			t.Errorf("field %s: missing explicit json tag (got %q)", f.Name, tag)
		case !strings.HasSuffix(name, "_ns"):
			t.Errorf("field %s: json tag %q does not end in _ns", f.Name, name)
		case strings.ToLower(name) != name:
			t.Errorf("field %s: json tag %q is not snake_case", f.Name, name)
		}
		wantKeys[name] = true
	}
	if !wantKeys["publish_ns"] {
		t.Fatal("Timings has no field tagged publish_ns")
	}

	raw, err := json.Marshal(Timings{Publish: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]int64
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	for k := range wantKeys {
		if _, ok := got[k]; !ok {
			t.Errorf("marshaled Timings missing key %q", k)
		}
	}
	for k := range got {
		if !wantKeys[k] {
			t.Errorf("marshaled Timings has unexpected key %q", k)
		}
	}
	if got["publish_ns"] != int64(time.Millisecond) {
		t.Errorf("publish_ns = %d, want %d", got["publish_ns"], int64(time.Millisecond))
	}
}
