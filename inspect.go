package rxview

import (
	"rxview/internal/dag"
	"rxview/internal/wal"
)

// Offline inspection of a durability directory — the API behind
// `xviewctl wal inspect` and `xviewctl checkpoint`. Both functions are
// read-only: unlike Open, they never truncate a torn tail or write a boot
// checkpoint, so they are safe to point at the live directory of a running
// process.

// WALRecord summarizes one committed write unit in the log.
type WALRecord struct {
	Gen       uint64 `json:"gen"`
	DeltaOps  int    `json:"delta_ops"` // DAG mutations (ΔV) in the record
	Mutations int    `json:"mutations"` // relational mutations (ΔR)
	Bytes     int    `json:"bytes"`     // framed size on disk
}

// WALSegment summarizes one log segment file.
type WALSegment struct {
	Path    string      `json:"path"`
	Start   uint64      `json:"start"` // generation the segment starts after
	Records []WALRecord `json:"records,omitempty"`
	Note    string      `json:"note,omitempty"` // torn tail / damage finding
}

// WALCheckpoint summarizes one checkpoint file.
type WALCheckpoint struct {
	Path  string `json:"path"`
	Gen   uint64 `json:"gen"`
	Bytes int    `json:"bytes"`         // state payload size
	Err   string `json:"err,omitempty"` // non-empty when the file fails validation
}

// WALInfo is the inspection view of a durability directory.
type WALInfo struct {
	Checkpoints []WALCheckpoint `json:"checkpoints"`
	Segments    []WALSegment    `json:"segments"`
}

// InspectWAL lists a durability directory: every checkpoint with its
// validity, every log segment with its records. Damage is reported in the
// Err/Note fields rather than failing the listing.
func InspectWAL(dir string) (*WALInfo, error) {
	di, err := wal.Inspect(dir)
	if err != nil {
		return nil, err
	}
	info := &WALInfo{}
	for _, c := range di.Checkpoints {
		info.Checkpoints = append(info.Checkpoints, WALCheckpoint{
			Path: c.Path, Gen: c.Gen, Bytes: c.Bytes, Err: c.Err,
		})
	}
	for _, s := range di.Segments {
		seg := WALSegment{Path: s.Path, Start: s.Start, Note: s.Note}
		for _, r := range s.Records {
			seg.Records = append(seg.Records, WALRecord{
				Gen: r.Gen, DeltaOps: r.DeltaOps, Mutations: r.Mutations, Bytes: r.Bytes,
			})
		}
		info.Segments = append(info.Segments, seg)
	}
	return info, nil
}

// CheckpointDetail describes the newest readable checkpoint in a durability
// directory: the sealed epoch a recovery would boot from.
type CheckpointDetail struct {
	Path       string      `json:"path"`
	Gen        uint64      `json:"gen"`
	Tables     []TableInfo `json:"tables"`      // base relations with row counts
	Nodes      int         `json:"nodes"`       // identity-table size, dead entries included
	LiveNodes  int         `json:"live_nodes"`  // nodes alive at the sealed epoch
	Edges      int         `json:"edges"`       // DAG edges at the sealed epoch
	OrderLen   int         `json:"order_len"`   // entries in the serialized L
	StateBytes int         `json:"state_bytes"` // payload size on disk
}

// InspectCheckpoint decodes the newest readable checkpoint in dir and
// returns its metadata. It fails (wrapping ErrCorruptLog where applicable)
// when no checkpoint is readable.
func InspectCheckpoint(dir string) (*CheckpointDetail, error) {
	gen, state, path, err := wal.NewestCheckpoint(dir)
	if err != nil {
		return nil, walErr(dir, err)
	}
	ck, err := decodeCheckpoint(state)
	if err != nil {
		return nil, &CorruptLogError{Dir: dir, Err: err}
	}
	d, err := dag.DecodeState(ck.dagState)
	if err != nil {
		return nil, &CorruptLogError{Dir: dir, Err: err}
	}
	det := &CheckpointDetail{
		Path:       path,
		Gen:        gen,
		Nodes:      d.Cap(),
		LiveNodes:  d.NumNodes(),
		Edges:      d.NumEdges(),
		OrderLen:   len(ck.order),
		StateBytes: len(state),
	}
	for _, tb := range ck.tables {
		det.Tables = append(det.Tables, TableInfo{Name: tb.name, Rows: len(tb.tuples)})
	}
	return det, nil
}
