package rxview

import (
	"fmt"

	"rxview/internal/atg"
	"rxview/internal/dtd"
	"rxview/internal/relational"
)

// ATG is a compiled attribute translation grammar: the publishing mapping
// σ : R → D of §2.2 that defines the recursive XML view of a relational
// schema. Build one with Builder (or use a bundled dataset such as
// NewRegistrar / NewSynthetic) and pass it to Open.
type ATG struct {
	c *atg.Compiled
}

// AttrField is one field of an element type's attribute tuple.
type AttrField struct {
	Name string
	Type Kind
}

// Field builds an AttrField.
func Field(name string, typ Kind) AttrField { return AttrField{Name: name, Type: typ} }

// ProjItem defines how one field of a child's attribute is produced by a
// projection rule.
type ProjItem struct {
	fromParent int
	constVal   Value
}

// FromParent copies field i of the parent's attribute.
func FromParent(i int) ProjItem { return ProjItem{fromParent: i} }

// ConstItem supplies a constant.
func ConstItem(v Value) ProjItem { return ProjItem{fromParent: -1, constVal: v} }

// Builder assembles an ATG over a DTD and a schema. The zero Builder is not
// usable; start with NewBuilder. Methods chain; errors surface at Build.
type Builder struct {
	b   *atg.Builder
	err error
}

// NewBuilder starts an ATG definition: dtdSrc is the view DTD (a sequence of
// <!ELEMENT ...> declarations; the first element is the root), schema the
// base relational schema.
func NewBuilder(dtdSrc string, schema *Schema) *Builder {
	d, err := dtd.Parse(dtdSrc)
	if err != nil {
		return &Builder{err: fmt.Errorf("rxview: DTD: %w", err)}
	}
	return &Builder{b: atg.NewBuilder(d, schema.s)}
}

// Attr declares the attribute tuple of an element type.
func (b *Builder) Attr(typ string, fields ...AttrField) *Builder {
	if b.err != nil {
		return b
	}
	fs := make([]atg.AttrField, len(fields))
	for i, f := range fields {
		fs[i] = atg.Field(f.Name, relational.Kind(f.Type))
	}
	b.b.Attr(typ, fs...)
	return b
}

// QueryRule generates the children of type child under parent from an SPJ
// query; the parent's attribute fields bind the query's parameters.
func (b *Builder) QueryRule(parent, child string, q Query) *Builder {
	if b.err != nil {
		return b
	}
	b.b.QueryRule(parent, child, q.spj())
	return b
}

// ProjRule generates a single child whose attribute is projected from the
// parent's attribute (and constants).
func (b *Builder) ProjRule(parent, child string, items ...ProjItem) *Builder {
	if b.err != nil {
		return b
	}
	is := make([]atg.ProjItem, len(items))
	for i, it := range items {
		if it.fromParent >= 0 {
			is[i] = atg.FromParent(it.fromParent)
		} else {
			is[i] = atg.ConstItem(it.constVal.v)
		}
	}
	b.b.ProjRule(parent, child, is...)
	return b
}

// Text declares which attribute field carries the text content of a PCDATA
// element type (field 0 by default).
func (b *Builder) Text(typ string, attrIndex int) *Builder {
	if b.err != nil {
		return b
	}
	b.b.Text(typ, attrIndex)
	return b
}

// Build validates and compiles the grammar.
func (b *Builder) Build() (*ATG, error) {
	if b.err != nil {
		return nil, b.err
	}
	c, err := b.b.Build()
	if err != nil {
		return nil, err
	}
	return &ATG{c: c}, nil
}

// MustBuild is Build that panics on error.
func (b *Builder) MustBuild() *ATG {
	a, err := b.Build()
	if err != nil {
		panic(err)
	}
	return a
}
