package rxview

import (
	"context"
	"errors"
	"fmt"

	"rxview/internal/core"
	"rxview/internal/viewupdate"
)

// Sentinel errors. Concrete errors returned by View methods match them under
// errors.Is; the concrete types carry detail and are reachable with
// errors.As.
var (
	// ErrSideEffect marks an update that would touch unselected
	// occurrences of a shared subtree (§2.1). The concrete type is
	// *SideEffectError.
	ErrSideEffect = errors.New("rxview: update has XML side effects")
	// ErrNotUpdatable marks an update the relational translation rejects:
	// no side-effect-free ΔR exists (§4). The concrete type is
	// *NotUpdatableError.
	ErrNotUpdatable = errors.New("rxview: update is not translatable to the base relations")
	// ErrParse marks a malformed XPath expression or update statement.
	// The concrete type is *ParseError.
	ErrParse = errors.New("rxview: parse error")
	// ErrTxOpen marks a write submitted directly to a View while a
	// transaction begun with View.Begin is still open: the transaction owns
	// the write path until Commit or Rollback.
	ErrTxOpen = errors.New("rxview: a transaction is open on this view")
	// ErrTxDone marks an operation on a transaction that has already been
	// committed or rolled back.
	ErrTxDone = errors.New("rxview: transaction already committed or rolled back")
	// ErrCorruptLog marks a durability directory whose contents fail
	// validation beyond what recovery may repair: a checksum failure before
	// the final record, an undecodable checkpoint, every checkpoint
	// unreadable. The concrete type is *CorruptLogError. (A torn final
	// record is not corruption — recovery truncates it and continues.)
	ErrCorruptLog = errors.New("rxview: durability log is corrupt")
	// ErrCheckpointMismatch marks a durability directory whose files are
	// individually valid but do not continue each other — a generation gap
	// between the checkpoint and the log, or a replayed log that fails to
	// reproduce a consistent state. The concrete type is
	// *CheckpointMismatchError.
	ErrCheckpointMismatch = errors.New("rxview: checkpoint and log disagree")
	// ErrDegraded marks a write rejected because a durable view is in
	// degraded (read-only) mode after a disk failure: the log refused a
	// commit record, writes are refused until Recover succeeds, and
	// snapshot reads keep serving the last acknowledged state. The
	// concrete type is *DegradedError.
	ErrDegraded = errors.New("rxview: view is degraded (read-only)")
)

// CorruptLogError reports unrecoverable damage in a durability directory.
type CorruptLogError struct {
	Dir string // the WithDurability directory
	Err error  // the underlying validation failure
}

func (e *CorruptLogError) Error() string {
	return fmt.Sprintf("rxview: durability log in %s is corrupt: %v", e.Dir, e.Err)
}

// Is matches ErrCorruptLog.
func (e *CorruptLogError) Is(target error) bool { return target == ErrCorruptLog }

// Unwrap exposes the underlying validation failure.
func (e *CorruptLogError) Unwrap() error { return e.Err }

// CheckpointMismatchError reports that the checkpoint and the log in a
// durability directory disagree: replaying the log onto the checkpointed
// state either hit a generation gap or failed to reproduce a consistent
// system.
type CheckpointMismatchError struct {
	Dir string
	Err error
}

func (e *CheckpointMismatchError) Error() string {
	return fmt.Sprintf("rxview: checkpoint and log in %s disagree: %v", e.Dir, e.Err)
}

// Is matches ErrCheckpointMismatch.
func (e *CheckpointMismatchError) Is(target error) bool { return target == ErrCheckpointMismatch }

// Unwrap exposes the underlying failure.
func (e *CheckpointMismatchError) Unwrap() error { return e.Err }

// DegradedError reports a write refused (or left non-durable) by a view in
// degraded mode. Applied distinguishes the two verdicts a durability
// failure can produce:
//
//   - Applied false — the common case — is a guaranteed-unapplied
//     rejection: the write is in neither the in-memory state nor the log,
//     and retrying after recovery is always safe.
//   - Applied true is an indeterminate outcome, possible only for the
//     commit during which the log failed under prefix (non-atomic)
//     semantics: the write reached the in-memory state but not the log. If
//     the view recovers, Recover's checkpoint makes it durable after all;
//     if the process dies first, it is lost. Clients must treat it like a
//     commit timeout, not a rejection.
type DegradedError struct {
	Cause   error // the disk failure that flipped the view into degraded mode
	Applied bool
}

func (e *DegradedError) Error() string {
	if e.Applied {
		return fmt.Sprintf("rxview: view degraded: write applied in memory but not durable: %v", e.Cause)
	}
	return fmt.Sprintf("rxview: view is degraded (read-only): %v", e.Cause)
}

// Is matches ErrDegraded.
func (e *DegradedError) Is(target error) bool { return target == ErrDegraded }

// Unwrap exposes the disk failure that caused the degradation.
func (e *DegradedError) Unwrap() error { return e.Cause }

// degradedApplied upgrades a degraded rejection to the indeterminate
// applied-but-not-durable verdict; callers invoke it when the report shows
// the write reached memory before the commit error surfaced.
func degradedApplied(err error) error {
	var de *DegradedError
	if errors.As(err, &de) && !de.Applied {
		return &DegradedError{Cause: de.Cause, Applied: true}
	}
	return err
}

// SideEffectError reports that an update would change occurrences of a
// shared subtree beyond the selected ones. Re-run with WithForceSideEffects
// (or decide via WithSideEffectPolicy) to apply at every occurrence under
// the revised semantics of §2.1.
type SideEffectError struct {
	Op        string // the update, rendered
	Witnesses int    // occurrences outside r[[p]] that would change
}

func (e *SideEffectError) Error() string {
	return fmt.Sprintf("rxview: %s has XML side effects (%d witness occurrence(s))", e.Op, e.Witnesses)
}

// Is matches ErrSideEffect.
func (e *SideEffectError) Is(target error) bool { return target == ErrSideEffect }

// NotUpdatableError reports that the relational translation rejected the
// update: every candidate ΔR would cause relational side effects (changes to
// the view beyond the requested ΔX), violate a key, or require deleting
// tuples other sources still need.
type NotUpdatableError struct {
	Op     string
	Reason string
}

func (e *NotUpdatableError) Error() string {
	return fmt.Sprintf("rxview: %s is not updatable: %s", e.Op, e.Reason)
}

// Is matches ErrNotUpdatable.
func (e *NotUpdatableError) Is(target error) bool { return target == ErrNotUpdatable }

// ParseError reports a malformed XPath expression or update statement. Op,
// when set, names the update the malformed input belongs to — View.Batch
// and Tx.Stage set it so a failure inside a group is attributable to its
// member, exactly like the runtime rejections.
type ParseError struct {
	Op    string
	Input string
	Err   error
}

func (e *ParseError) Error() string {
	if e.Op != "" && e.Op != e.Input {
		return fmt.Sprintf("rxview: %s: parsing %q: %v", e.Op, e.Input, e.Err)
	}
	return fmt.Sprintf("rxview: parsing %q: %v", e.Input, e.Err)
}

// Is matches ErrParse.
func (e *ParseError) Is(target error) bool { return target == ErrParse }

// Unwrap exposes the underlying parser error.
func (e *ParseError) Unwrap() error { return e.Err }

// wrapErr translates implementation-layer errors into the public taxonomy.
// Context errors are annotated with the update that did not run (they still
// match context.Canceled / DeadlineExceeded under errors.Is); anything
// unrecognized passes through unchanged.
func wrapErr(op string, err error) error {
	if err == nil {
		return nil
	}
	var se *core.SideEffectError
	if errors.As(err, &se) {
		return &SideEffectError{Op: op, Witnesses: se.Witnesses}
	}
	var rej *viewupdate.RejectedError
	if errors.As(err, &rej) {
		return &NotUpdatableError{Op: op, Reason: rej.Reason}
	}
	switch {
	case errors.Is(err, core.ErrTxOpen):
		return ErrTxOpen
	case errors.Is(err, core.ErrTxDone):
		return ErrTxDone
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("rxview: %s: %w", op, err)
	}
	return err
}

// parseErr wraps a parser failure.
func parseErr(input string, err error) error {
	if err == nil {
		return nil
	}
	return &ParseError{Input: input, Err: err}
}
