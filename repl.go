package rxview

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"rxview/internal/core"
	"rxview/internal/dag"
	"rxview/internal/repl"
	"rxview/internal/storage"
	"rxview/internal/wal"
)

// Replication glue. The primary side exposes its durable change log — the
// exact CommitRecord stream the WAL already serializes — as a ReplSource: a
// checkpoint fetch plus a generation-contiguous record stream. The follower
// side is a Replica: a read-only view that restores from a checkpoint
// payload and replays streamed records one epoch per record through the
// same machinery boot recovery uses, with L and M maintained incrementally.
// The HTTP transport between the two lives in the server package; this file
// only defines the state machines and the wire framing.

// ErrReplicaStale marks a follower that cannot continue from its current
// generation because the primary's log no longer holds the range — the
// segments were pruned by checkpointing. The follower re-syncs by fetching
// the newest checkpoint and restoring from it.
var ErrReplicaStale = errors.New("rxview: follower generation pruned from the primary's log")

// ReplSource streams a durable view's committed history to followers. Safe
// for concurrent use by any number of streams while the view keeps
// committing; obtain it once at setup with View.ReplSource.
type ReplSource struct {
	v   *View
	src *repl.Source
}

// ReplSource turns a durable view into a change-log source: every commit
// the log accepts is also published (in wire framing) to an in-memory tail,
// and the WAL segments serve as the cold catch-up range. Call it once,
// before the view starts serving writes — it installs a commit observer,
// which is a setup-time operation like SetCommitSink. Views opened without
// WithDurability cannot stream: their history is not retained anywhere.
func (v *View) ReplSource() (*ReplSource, error) {
	if v.log == nil {
		return nil, fmt.Errorf("rxview: replication requires a durable view (WithDurability)")
	}
	tail := repl.NewTail(v.sys.Generation(), 0)
	v.sys.AddCommitObserver(func(recs []core.CommitRecord) {
		for _, r := range recs {
			tail.Publish(r.Gen, wal.AppendFramedRecord(nil, wal.Record{Gen: r.Gen, Delta: r.Delta, DR: r.DR}))
		}
	})
	return &ReplSource{v: v, src: repl.NewSource(v.log.Dir(), tail)}, nil
}

// Generation returns the newest streamable generation: the durable
// watermark, advanced only after the log accepted a commit. It can trail
// View.Generation transiently (a prefix-semantics commit that failed to
// persist) but never leads it.
func (rs *ReplSource) Generation() uint64 { return rs.src.Durable() }

// Oldest returns the oldest generation a stream can resume from; followers
// behind it must refetch the checkpoint.
func (rs *ReplSource) Oldest() (uint64, error) { return rs.src.Oldest() }

// CheckpointBytes returns the newest sealed checkpoint: its generation and
// the opaque payload a Replica.Restore accepts. Reading races no writer —
// checkpoints are temp-written and renamed into place.
func (rs *ReplSource) CheckpointBytes() (gen uint64, state []byte, err error) {
	gen, state, _, err = wal.NewestCheckpoint(rs.v.log.Dir())
	return gen, state, err
}

// Stream emits the framed records of every generation past from, in order,
// one emit call per record, until the stream has been caught up and idle
// for window (clean nil return — the long-poll recycle point) or ctx ends.
// A from that predates the retained log returns ErrReplicaStale.
func (rs *ReplSource) Stream(ctx context.Context, from uint64, window time.Duration, emit func(gen uint64, frame []byte) error) error {
	err := rs.src.Stream(ctx, from, window, emit)
	if repl.IsPruned(err) {
		return fmt.Errorf("%w: %w", ErrReplicaStale, err)
	}
	return err
}

// ReplRecord is one committed write unit in replay form, decoded from a
// stream frame. Opaque: followers pass it to Replica.ApplyRecord.
type ReplRecord struct {
	rec core.CommitRecord
}

// Generation returns the generation this record produces when applied.
func (r ReplRecord) Generation() uint64 { return r.rec.Gen }

// ReplFrameReader decodes a change-log stream — the byte sequence a
// ReplSource.Stream emits, typically arriving as an HTTP response body —
// into records. Next returns io.EOF at a clean stream end and
// io.ErrUnexpectedEOF when the stream stops inside a frame (a dropped
// connection; reconnect and resume).
type ReplFrameReader struct {
	fr *wal.FrameReader
}

// NewReplFrameReader wraps a stream body.
func NewReplFrameReader(r io.Reader) *ReplFrameReader {
	return &ReplFrameReader{fr: wal.NewFrameReader(r)}
}

// Next decodes one record.
func (r *ReplFrameReader) Next() (ReplRecord, error) {
	rec, err := r.fr.Next()
	if err != nil {
		return ReplRecord{}, err
	}
	return ReplRecord{rec: core.CommitRecord{Gen: rec.Gen, Delta: rec.Delta, DR: rec.DR}}, nil
}

// Replica is a read-only follower of a durable primary: it restores from a
// fetched checkpoint payload and replays streamed records, sealing exactly
// one generation per record. It owns no log of its own — a restarted
// follower re-syncs from the primary's checkpoint, which is the durable
// copy of record. Like View it is single-writer: Restore and ApplyRecord
// must run on one goroutine (the serving layer's apply loop), while any
// number of readers use snapshots taken between applies.
type Replica struct {
	v   *View
	a   *ATG
	cfg config
}

// OpenReplica publishes the caller-seeded DB as the replica's provisional
// state at generation 0; Restore replaces it with the primary's checkpoint.
// Durability options are refused — a replica's durability is its primary.
func OpenReplica(a *ATG, db *DB, opts ...Option) (*Replica, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.durDir != "" {
		return nil, fmt.Errorf("rxview: a replica cannot be durable; its primary's log is the durable copy")
	}
	sys, err := core.Open(a.c, db.db, cfg.opts)
	if err != nil {
		return nil, err
	}
	return &Replica{v: &View{sys: sys, db: db}, a: a, cfg: cfg}, nil
}

// View returns the replica's view surface for reads — Query, Snapshot,
// Stats, XML, Generation. The pointer is stable across Restore: serving
// layers hold it once. Writes through it are the caller's responsibility to
// prevent (the server's Replica engine refuses them with
// ErrReadOnlyReplica before they reach here).
func (r *Replica) View() *View { return r.v }

// Generation returns the prefix of the primary's write history the replica
// has applied.
func (r *Replica) Generation() uint64 { return r.v.sys.Generation() }

// Restore replaces the replica's entire state with a checkpoint payload at
// gen, as fetched from the primary, and verifies it with CheckConsistency
// — a corrupt or inconsistent payload is refused with the same taxonomy
// boot recovery uses, leaving the previous state in place. Single-writer:
// see Replica.
func (r *Replica) Restore(gen uint64, state []byte) error {
	ck, err := decodeCheckpoint(state)
	if err != nil {
		return &CorruptLogError{Dir: "replica checkpoint", Err: err}
	}
	if ck.gen != gen {
		return &CheckpointMismatchError{Dir: "replica checkpoint",
			Err: fmt.Errorf("checkpoint payload is for generation %d, fetch said %d", ck.gen, gen)}
	}
	d, err := dag.DecodeState(ck.dagState)
	if err != nil {
		return &CorruptLogError{Dir: "replica checkpoint", Err: err}
	}
	// The DB reset is safe under concurrent readers: sealed snapshots
	// evaluate against the frozen DAG and never touch the relational
	// instance.
	db := r.v.db
	db.db.Reset()
	for _, tb := range ck.tables {
		for _, t := range tb.tuples {
			if err := db.db.Insert(tb.name, t); err != nil {
				return &CorruptLogError{Dir: "replica checkpoint",
					Err: fmt.Errorf("checkpointed tuple rejected: %w", err)}
			}
		}
	}
	sys, err := core.Recover(r.a.c, storage.NewMemory(db.db), d, ck.order, ck.gen, nil, r.cfg.opts)
	if err != nil {
		return &CheckpointMismatchError{Dir: "replica checkpoint", Err: err}
	}
	if err := sys.CheckConsistency(); err != nil {
		return &CheckpointMismatchError{Dir: "replica checkpoint",
			Err: fmt.Errorf("restored state fails consistency check: %w", err)}
	}
	r.v.sys = sys
	return nil
}

// ApplyRecord replays one streamed record, advancing the replica by exactly
// one generation. A record that does not continue the replica's generation
// returns ErrReplicaStale-compatible ErrCheckpointMismatch: the follower
// lost part of the stream and must Restore from a fresh checkpoint rather
// than replay into a wrong state. Single-writer: see Replica.
func (r *Replica) ApplyRecord(rec ReplRecord) error {
	if err := r.v.sys.ApplyCommitRecord(rec.rec); err != nil {
		return &CheckpointMismatchError{Dir: "replication stream", Err: err}
	}
	return nil
}
