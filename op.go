package rxview

import (
	"fmt"

	"rxview/internal/core"
	"rxview/internal/relational"
	"rxview/internal/update"
)

// Update is one XML view update ΔX (§2.1): insert a subtree under every node
// an XPath expression selects, or delete the selected subtree occurrences.
// Build one with Insert or Delete and pass it to View.Apply, View.DryRun or
// View.Batch.
type Update struct {
	delete   bool
	path     string
	elemType string
	attrs    []Value
}

// Insert builds the update "insert (A, t) into p": publish the subtree
// ST(A, t) — element type elemType with attribute tuple attrs, expanded
// recursively by the view's ATG — as the rightmost child of every node
// selected by the XPath expression path. The attrs are the element type's
// attribute fields in ATG declaration order.
func Insert(path, elemType string, attrs ...Value) Update {
	return Update{path: path, elemType: elemType, attrs: attrs}
}

// Delete builds the update "delete p": remove the parent-child edges Ep(r)
// selected by the XPath expression path (subtrees that become unreachable
// are garbage-collected).
func Delete(path string) Update {
	return Update{delete: true, path: path}
}

// IsDelete reports whether the update is a deletion.
func (u Update) IsDelete() bool { return u.delete }

// Path returns the update's XPath expression.
func (u Update) Path() string { return u.path }

// String renders the update in the statement syntax.
func (u Update) String() string {
	if u.delete {
		return "delete " + u.path
	}
	return fmt.Sprintf("insert %s%s into %s", u.elemType, tupleOf(u.attrs), u.path)
}

// compile resolves the update against nothing but the XPath grammar (via
// the shared compiled-path cache, so a hot update target parses once); the
// receiving view validates types and attributes against its DTD and ATG.
func (u Update) compile() (*update.Op, error) {
	p, err := core.ParsePath(u.path)
	if err != nil {
		return nil, parseErr(u.path, err)
	}
	if u.delete {
		return &update.Op{Kind: update.OpDelete, Path: p}, nil
	}
	attr := make(relational.Tuple, len(u.attrs))
	for i, v := range u.attrs {
		attr[i] = v.v
	}
	return &update.Op{Kind: update.OpInsert, Path: p, Type: u.elemType, Attr: attr}, nil
}
