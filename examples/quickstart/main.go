// Quickstart: the running example of the paper (Example 1). Publishes the
// registrar database as a recursive XML view, shows the DAG compression,
// runs the paper's updates — including the side-effect detection of §2.1 —
// and prints the relational translations ΔR.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"rxview"
)

func main() {
	ctx := context.Background()
	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		log.Fatal(err)
	}
	view, err := rxview.Open(atg, db)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== The registrar XML view (Fig.1 of the paper) ==")
	xml, err := view.XML(10000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(xml)
	fmt.Println("DAG statistics:", view.Stats())
	fmt.Println()

	// Query with recursive XPath.
	fmt.Println(`== Query: //course[cno="CS320"]//student ==`)
	students, err := view.Query(ctx, `//course[cno="CS320"]//student`)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range students {
		fmt.Printf("  student %s\n", n.Attr)
	}
	fmt.Println()

	// The paper's ΔX: insert CS240 as prereq of the CS320 below CS650.
	// First delete the existing CS320→CS240 prerequisite so the insert is
	// meaningful, exactly as the paper's Example 1 assumes.
	fmt.Println("== delete //course[cno=CS320]/prereq/course[cno=CS240] ==")
	rep, err := view.Apply(ctx, rxview.Delete(`//course[cno="CS320"]/prereq/course[cno="CS240"]`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ΔV: %d edge deletion(s); ΔR: %v\n\n", rep.DVDeletes, rep.Changes)

	ins := rxview.Insert(`course[cno="CS650"]//course[cno="CS320"]/prereq`,
		"course", rxview.Str("CS240"), rxview.Str("Algorithms"))
	fmt.Println("==", ins, "==")
	_, err = view.Apply(ctx, ins)
	if errors.Is(err, rxview.ErrSideEffect) {
		fmt.Println("  side effect detected (the CS320 subtree is shared):")
		fmt.Println("   ", err)
		fmt.Println("  proceeding under the revised semantics of §2.1 ...")
	} else if err != nil {
		log.Fatal(err)
	}

	// The user agrees: apply at every occurrence.
	force, err := rxview.Open(atg, db, rxview.WithForceSideEffects())
	if err != nil {
		log.Fatal(err)
	}
	rep, err = force.Apply(ctx, ins)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  applied: |r[[p]]|=%d, ΔV: %d edge insertion(s)\n", rep.Targets, rep.DVInserts)
	fmt.Printf("  ΔR: %v\n", rep.Changes)
	if err := force.CheckConsistency(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  consistency ΔX(T) = σ(ΔR(I)) verified ✓")
	fmt.Println()

	// Example 5's deletion.
	fmt.Println(`== delete //course[cno="CS320"]//student[ssn="S02"] ==`)
	rep, err = force.Apply(ctx, rxview.Delete(`//course[cno="CS320"]//student[ssn="S02"]`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Ep(r) had %d edge(s); ΔR: %v\n", rep.Edges, rep.Changes)
	fmt.Println("  (the student node survives: it is still shared by CS650's takenBy)")
	if err := force.CheckConsistency(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  consistency verified ✓")
	fmt.Println()

	fmt.Println("== final view ==")
	xml, err = force.XML(10000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(xml)
	fmt.Println("final statistics:", force.Stats())
}
