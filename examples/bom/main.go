// Bill-of-materials example: a second recursive view built from scratch with
// the public ATG builder — parts contain subparts (shared subassemblies!)
// and have suppliers. Demonstrates defining your own σ : R → D, key
// preservation, shared-subtree updates and the revised side-effect
// semantics on a domain other than the paper's registrar.
package main

import (
	"fmt"
	"log"

	"rxview/internal/atg"
	"rxview/internal/core"
	"rxview/internal/dtd"
	"rxview/internal/relational"
)

func buildATG() (*atg.Compiled, *relational.Database, error) {
	intK, str := relational.KindInt, relational.KindString
	bit := []relational.Value{relational.Int(0), relational.Int(1)}
	schema, err := relational.NewSchema(
		relational.MustTableSchema("part", []relational.Column{
			{Name: "pno", Type: str},
			{Name: "pname", Type: str},
			{Name: "top", Type: intK, Domain: bit},
		}, "pno"),
		relational.MustTableSchema("contains", []relational.Column{
			{Name: "parent", Type: str},
			{Name: "child", Type: str},
		}, "parent", "child"),
		relational.MustTableSchema("supplier", []relational.Column{
			{Name: "sid", Type: str},
			{Name: "sname", Type: str},
		}, "sid"),
		relational.MustTableSchema("supplies", []relational.Column{
			{Name: "sid", Type: str},
			{Name: "pno", Type: str},
		}, "sid", "pno"),
	)
	if err != nil {
		return nil, nil, err
	}
	d, err := dtd.Parse(`
<!ELEMENT catalog (part*)>
<!ELEMENT part (pno, pname, subparts, suppliers)>
<!ELEMENT subparts (part*)>
<!ELEMENT suppliers (supplier*)>
<!ELEMENT supplier (sid, sname)>
<!ELEMENT pno (#PCDATA)>
<!ELEMENT pname (#PCDATA)>
<!ELEMENT sid (#PCDATA)>
<!ELEMENT sname (#PCDATA)>
`)
	if err != nil {
		return nil, nil, err
	}

	qTop := &relational.SPJ{
		Name: "Qcatalog_part",
		From: []relational.TableRef{{Table: "part"}},
		Where: []relational.EqPred{
			{Left: relational.Col(0, 2), Right: relational.Const(relational.Int(1))},
		},
		Selects: []relational.SelectItem{
			{As: "pno", Src: relational.Col(0, 0)},
			{As: "pname", Src: relational.Col(0, 1)},
		},
	}
	qSub := &relational.SPJ{
		Name:    "Qsubparts_part",
		NParams: 1,
		From:    []relational.TableRef{{Table: "contains"}, {Table: "part"}},
		Where: []relational.EqPred{
			{Left: relational.Col(0, 0), Right: relational.Param(0)},
			{Left: relational.Col(0, 1), Right: relational.Col(1, 0)},
		},
		Selects: []relational.SelectItem{
			{As: "pno", Src: relational.Col(1, 0)},
			{As: "pname", Src: relational.Col(1, 1)},
		},
	}
	qSup := &relational.SPJ{
		Name:    "Qsuppliers_supplier",
		NParams: 1,
		From:    []relational.TableRef{{Table: "supplies"}, {Table: "supplier"}},
		Where: []relational.EqPred{
			{Left: relational.Col(0, 1), Right: relational.Param(0)},
			{Left: relational.Col(0, 0), Right: relational.Col(1, 0)},
		},
		Selects: []relational.SelectItem{
			{As: "sid", Src: relational.Col(1, 0)},
			{As: "sname", Src: relational.Col(1, 1)},
		},
	}
	compiled, err := atg.NewBuilder(d, schema).
		Attr("part", atg.Field("pno", str), atg.Field("pname", str)).
		Attr("subparts", atg.Field("pno", str)).
		Attr("suppliers", atg.Field("pno", str)).
		Attr("supplier", atg.Field("sid", str), atg.Field("sname", str)).
		Attr("pno", atg.Field("v", str)).
		Attr("pname", atg.Field("v", str)).
		Attr("sid", atg.Field("v", str)).
		Attr("sname", atg.Field("v", str)).
		QueryRule("catalog", "part", qTop).
		ProjRule("part", "pno", atg.FromParent(0)).
		ProjRule("part", "pname", atg.FromParent(1)).
		ProjRule("part", "subparts", atg.FromParent(0)).
		ProjRule("part", "suppliers", atg.FromParent(0)).
		QueryRule("subparts", "part", qSub).
		QueryRule("suppliers", "supplier", qSup).
		ProjRule("supplier", "sid", atg.FromParent(0)).
		ProjRule("supplier", "sname", atg.FromParent(1)).
		Build()
	if err != nil {
		return nil, nil, err
	}

	db := relational.NewDatabase(schema)
	str2 := relational.Str
	one, zero := relational.Int(1), relational.Int(0)
	for _, p := range [][3]relational.Value{
		{str2("P1"), str2("car"), one},
		{str2("P2"), str2("cart"), one},
		{str2("P3"), str2("wheel"), zero},
		{str2("P4"), str2("axle"), zero},
		{str2("P5"), str2("hub"), zero},
		{str2("P6"), str2("engine"), zero},
	} {
		if err := db.Insert("part", relational.Tuple{p[0], p[1], p[2]}); err != nil {
			return nil, nil, err
		}
	}
	for _, c := range [][2]string{
		{"P1", "P3"}, {"P1", "P6"}, // car: wheel + engine
		{"P2", "P3"},               // cart: wheel (shared subassembly!)
		{"P3", "P4"}, {"P3", "P5"}, // wheel: axle + hub
	} {
		if err := db.Insert("contains", relational.Tuple{str2(c[0]), str2(c[1])}); err != nil {
			return nil, nil, err
		}
	}
	db.Insert("supplier", relational.Tuple{str2("S1"), str2("Acme")})
	db.Insert("supplier", relational.Tuple{str2("S2"), str2("Globex")})
	db.Insert("supplies", relational.Tuple{str2("S1"), str2("P3")})
	db.Insert("supplies", relational.Tuple{str2("S2"), str2("P6")})
	return compiled, db, nil
}

func main() {
	compiled, db, err := buildATG()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.Open(compiled, db, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== bill-of-materials view ==")
	xml, err := sys.XML(10000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(xml)
	st := sys.Stats()
	fmt.Printf("the wheel subassembly is stored once: %d DAG nodes vs %.0f tree nodes (%.2fx)\n\n",
		st.Nodes, st.TreeSize, st.Compression)

	// Adding a tire to the wheel of the CAR only is a side effect: the cart
	// shares the same wheel.
	stmt := `insert part(pno="P7", pname="tire") into part[pno="P1"]/subparts/part[pno="P3"]/subparts`
	fmt.Println("==", stmt, "==")
	_, err = sys.Execute(stmt)
	if core.IsSideEffect(err) {
		fmt.Println("  side effect detected: the cart's wheel would change too")
	} else if err != nil {
		log.Fatal(err)
	}

	// Adding it to every wheel occurrence is clean.
	stmt = `insert part(pno="P7", pname="tire") into //part[pno="P3"]/subparts`
	fmt.Println("==", stmt, "==")
	sysF, err := core.Open(compiled, db, core.Options{ForceSideEffects: true})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sysF.Execute(stmt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  applied; ΔR: %v\n", rep.DR)
	if err := sysF.CheckConsistency(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  consistency verified ✓")

	// Dropping the engine from the car translates to a contains deletion.
	stmt = `delete part[pno="P1"]/subparts/part[pno="P6"]`
	fmt.Println("==", stmt, "==")
	rep, err = sysF.Execute(stmt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  applied; ΔR: %v (engine part survives: %d gc'd nodes are its view remnants)\n",
		rep.DR, rep.Removed)
	if err := sysF.CheckConsistency(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  consistency verified ✓")
	fmt.Println()
	xml, _ = sysF.XML(10000)
	fmt.Println(xml)
}
