// Bill-of-materials example: a second recursive view built from scratch with
// the public schema and ATG builders — parts contain subparts (shared
// subassemblies!) and have suppliers. Demonstrates defining your own
// σ : R → D, key preservation, shared-subtree updates, a programmable
// side-effect policy, and batched updates on a domain other than the
// paper's registrar.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"rxview"
)

func buildView() (*rxview.ATG, *rxview.DB, error) {
	str, intK := rxview.KindString, rxview.KindInt
	bit := []rxview.Value{rxview.Int(0), rxview.Int(1)}
	schema, err := rxview.NewSchema(
		rxview.Table{Name: "part", Columns: []rxview.Column{
			{Name: "pno", Type: str},
			{Name: "pname", Type: str},
			{Name: "top", Type: intK, Domain: bit},
		}, Key: []string{"pno"}},
		rxview.Table{Name: "contains", Columns: []rxview.Column{
			{Name: "parent", Type: str},
			{Name: "child", Type: str},
		}, Key: []string{"parent", "child"}},
		rxview.Table{Name: "supplier", Columns: []rxview.Column{
			{Name: "sid", Type: str},
			{Name: "sname", Type: str},
		}, Key: []string{"sid"}},
		rxview.Table{Name: "supplies", Columns: []rxview.Column{
			{Name: "sid", Type: str},
			{Name: "pno", Type: str},
		}, Key: []string{"sid", "pno"}},
	)
	if err != nil {
		return nil, nil, err
	}

	qTop := rxview.Query{
		Name: "Qcatalog_part",
		From: []string{"part"},
		Where: []rxview.Pred{
			rxview.Eq(rxview.Col(0, 2), rxview.Const(rxview.Int(1))),
		},
		Select: []rxview.Sel{
			{As: "pno", Src: rxview.Col(0, 0)},
			{As: "pname", Src: rxview.Col(0, 1)},
		},
	}
	qSub := rxview.Query{
		Name:   "Qsubparts_part",
		Params: 1,
		From:   []string{"contains", "part"},
		Where: []rxview.Pred{
			rxview.Eq(rxview.Col(0, 0), rxview.Param(0)),
			rxview.Eq(rxview.Col(0, 1), rxview.Col(1, 0)),
		},
		Select: []rxview.Sel{
			{As: "pno", Src: rxview.Col(1, 0)},
			{As: "pname", Src: rxview.Col(1, 1)},
		},
	}
	qSup := rxview.Query{
		Name:   "Qsuppliers_supplier",
		Params: 1,
		From:   []string{"supplies", "supplier"},
		Where: []rxview.Pred{
			rxview.Eq(rxview.Col(0, 1), rxview.Param(0)),
			rxview.Eq(rxview.Col(0, 0), rxview.Col(1, 0)),
		},
		Select: []rxview.Sel{
			{As: "sid", Src: rxview.Col(1, 0)},
			{As: "sname", Src: rxview.Col(1, 1)},
		},
	}
	atg, err := rxview.NewBuilder(`
<!ELEMENT catalog (part*)>
<!ELEMENT part (pno, pname, subparts, suppliers)>
<!ELEMENT subparts (part*)>
<!ELEMENT suppliers (supplier*)>
<!ELEMENT supplier (sid, sname)>
<!ELEMENT pno (#PCDATA)>
<!ELEMENT pname (#PCDATA)>
<!ELEMENT sid (#PCDATA)>
<!ELEMENT sname (#PCDATA)>
`, schema).
		Attr("part", rxview.Field("pno", str), rxview.Field("pname", str)).
		Attr("subparts", rxview.Field("pno", str)).
		Attr("suppliers", rxview.Field("pno", str)).
		Attr("supplier", rxview.Field("sid", str), rxview.Field("sname", str)).
		Attr("pno", rxview.Field("v", str)).
		Attr("pname", rxview.Field("v", str)).
		Attr("sid", rxview.Field("v", str)).
		Attr("sname", rxview.Field("v", str)).
		QueryRule("catalog", "part", qTop).
		ProjRule("part", "pno", rxview.FromParent(0)).
		ProjRule("part", "pname", rxview.FromParent(1)).
		ProjRule("part", "subparts", rxview.FromParent(0)).
		ProjRule("part", "suppliers", rxview.FromParent(0)).
		QueryRule("subparts", "part", qSub).
		QueryRule("suppliers", "supplier", qSup).
		ProjRule("supplier", "sid", rxview.FromParent(0)).
		ProjRule("supplier", "sname", rxview.FromParent(1)).
		Build()
	if err != nil {
		return nil, nil, err
	}

	db := rxview.NewDB(schema)
	s, n := rxview.Str, rxview.Int
	for _, p := range [][]rxview.Value{
		{s("P1"), s("car"), n(1)},
		{s("P2"), s("cart"), n(1)},
		{s("P3"), s("wheel"), n(0)},
		{s("P4"), s("axle"), n(0)},
		{s("P5"), s("hub"), n(0)},
		{s("P6"), s("engine"), n(0)},
	} {
		if err := db.Insert("part", p...); err != nil {
			return nil, nil, err
		}
	}
	for _, c := range [][2]string{
		{"P1", "P3"}, {"P1", "P6"}, // car: wheel + engine
		{"P2", "P3"},               // cart: wheel (shared subassembly!)
		{"P3", "P4"}, {"P3", "P5"}, // wheel: axle + hub
	} {
		if err := db.Insert("contains", s(c[0]), s(c[1])); err != nil {
			return nil, nil, err
		}
	}
	db.MustInsert("supplier", s("S1"), s("Acme"))
	db.MustInsert("supplier", s("S2"), s("Globex"))
	db.MustInsert("supplies", s("S1"), s("P3"))
	db.MustInsert("supplies", s("S2"), s("P6"))
	return atg, db, nil
}

func main() {
	ctx := context.Background()
	atg, db, err := buildView()
	if err != nil {
		log.Fatal(err)
	}
	view, err := rxview.Open(atg, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== bill-of-materials view ==")
	xml, err := view.XML(10000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(xml)
	st := view.Stats()
	fmt.Printf("the wheel subassembly is stored once: %d DAG nodes vs %.0f tree nodes (%.2fx)\n\n",
		st.Nodes, st.TreeSize, st.Compression)

	// Adding a tire to the wheel of the CAR only is a side effect: the cart
	// shares the same wheel.
	tire := rxview.Insert(`part[pno="P1"]/subparts/part[pno="P3"]/subparts`,
		"part", rxview.Str("P7"), rxview.Str("tire"))
	fmt.Println("==", tire, "==")
	_, err = view.Apply(ctx, tire)
	if errors.Is(err, rxview.ErrSideEffect) {
		fmt.Println("  side effect detected: the cart's wheel would change too")
	} else if err != nil {
		log.Fatal(err)
	}

	// A programmable strategy instead of all-or-nothing forcing: apply
	// shared-subtree insertions everywhere, but never cascade deletions
	// through shared subassemblies.
	policy := rxview.WithSideEffectPolicy(func(info rxview.SideEffectInfo) rxview.Decision {
		if info.Delete {
			return rxview.Reject
		}
		return rxview.ApplyEverywhere
	})
	viewP, err := rxview.Open(atg, db, policy)
	if err != nil {
		log.Fatal(err)
	}

	// Adding the tire to every wheel occurrence is what the policy does.
	every := rxview.Insert(`//part[pno="P3"]/subparts`, "part", rxview.Str("P7"), rxview.Str("tire"))
	fmt.Println("==", every, "==")
	rep, err := viewP.Apply(ctx, every)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  applied; ΔR: %v\n", rep.Changes)
	if err := viewP.CheckConsistency(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  consistency verified ✓")

	// A batch: drop the engine from the car and register two gearbox
	// subparts, with one deferred maintenance pass over L and M.
	fmt.Println("== batch: -engine, +gearbox, +clutch ==")
	reps, err := viewP.Batch(ctx,
		rxview.Delete(`part[pno="P1"]/subparts/part[pno="P6"]`),
		rxview.Insert(`part[pno="P1"]/subparts`, "part", rxview.Str("P8"), rxview.Str("gearbox")),
		rxview.Insert(`//part[pno="P8"]/subparts`, "part", rxview.Str("P9"), rxview.Str("clutch")),
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reps {
		fmt.Printf("  %s -> applied=%v ΔR=%v\n", r.Op, r.Applied, r.Changes)
	}
	if err := viewP.CheckConsistency(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  consistency verified ✓")
	fmt.Println()
	xml, _ = viewP.XML(10000)
	fmt.Println(xml)
}
