// Synthetic walk-through: generates the §5 dataset at a small scale, prints
// Fig.10(b)-style statistics, and runs one update of each workload class
// with the phase breakdown the paper's Fig.11 reports.
package main

import (
	"flag"
	"fmt"
	"log"

	"rxview/internal/core"
	"rxview/internal/workload"
)

func main() {
	nc := flag.Int("nc", 2000, "|C|, the dataset scale")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	syn, err := workload.NewSynthetic(workload.SyntheticConfig{NC: *nc, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.Open(syn.ATG, syn.DB, core.Options{ForceSideEffects: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== dataset statistics (|C| = %d), cf. Fig.10(b) ==\n", *nc)
	st := sys.Stats()
	fmt.Printf("  base rows:          %d (C=F=CU=%d, H=%d)\n",
		st.BaseRows, syn.DB.Rel("C").Len(), syn.DB.Rel("H").Len())
	fmt.Printf("  published subtrees: %.0f (tree nodes)\n", st.TreeSize)
	fmt.Printf("  compressed DAG:     %d nodes, %d edges (%.2fx compression)\n",
		st.Nodes, st.Edges, st.Compression)
	fmt.Printf("  shared subtrees:    %.1f%% of nodes (paper: 31.4%% of C instances)\n",
		100*st.SharedFrac)
	fmt.Printf("  |L| = %d, |M| = %d\n\n", st.TopoLen, st.MatrixPairs)

	run := func(label string, ops []workload.Op) {
		for _, op := range ops {
			rep, err := sys.Execute(op.Stmt)
			if err != nil {
				fmt.Printf("  [%s] %s\n    rejected: %v\n", label, op.Stmt, err)
				continue
			}
			fmt.Printf("  [%s] %s\n", label, clip(op.Stmt, 100))
			fmt.Printf("    |r[[p]]|=%d |Ep|=%d ΔV+%d/-%d ΔR=%d mutation(s)\n",
				rep.RP, rep.EP, rep.DVInserts, rep.DVDeletes, len(rep.DR))
			fmt.Printf("    (a) eval=%v  (b) translate+apply=%v  (c) maintain=%v\n",
				rep.Timings.Eval, rep.Timings.Translate+rep.Timings.Apply, rep.Timings.Maintain)
			if err := sys.CheckConsistency(); err != nil {
				log.Fatal("INVARIANT BROKEN: ", err)
			}
		}
	}

	// Insertions first: the workload generator addresses the initial view,
	// and W1 deletions remove whole value classes.
	fmt.Println("== one insertion per workload class (Fig.11 d–f) ==")
	run("W1 ins", syn.InsertWorkload(workload.W1, 1, 4))
	run("W2 ins", syn.InsertWorkload(workload.W2, 1, 5))
	run("W3 ins", syn.InsertWorkload(workload.W3, 1, 6))
	fmt.Println()
	fmt.Println("== one deletion per workload class (Fig.11 a–c) ==")
	run("W1 del", syn.DeleteWorkload(workload.W1, 1, 1))
	run("W2 del", syn.DeleteWorkload(workload.W2, 1, 2))
	run("W3 del", syn.DeleteWorkload(workload.W3, 1, 3))
	fmt.Println()
	fmt.Println("final:", sys.Stats())
	fmt.Println("every update verified against a from-scratch republication ✓")
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
