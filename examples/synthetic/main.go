// Synthetic walk-through: generates the §5 dataset at a small scale, prints
// Fig.10(b)-style statistics, and runs one update of each workload class
// with the phase breakdown the paper's Fig.11 reports.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"rxview"
)

func main() {
	nc := flag.Int("nc", 2000, "|C|, the dataset scale")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()
	ctx := context.Background()

	syn, err := rxview.NewSynthetic(rxview.SyntheticConfig{NC: *nc, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	view, err := rxview.Open(syn.ATG, syn.DB, rxview.WithForceSideEffects())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== dataset statistics (|C| = %d), cf. Fig.10(b) ==\n", *nc)
	st := view.Stats()
	fmt.Printf("  base rows:          %d (C=F=CU=%d, H=%d)\n",
		st.BaseRows, syn.DB.Rows("C"), syn.DB.Rows("H"))
	fmt.Printf("  published subtrees: %.0f (tree nodes)\n", st.TreeSize)
	fmt.Printf("  compressed DAG:     %d nodes, %d edges (%.2fx compression)\n",
		st.Nodes, st.Edges, st.Compression)
	fmt.Printf("  shared subtrees:    %.1f%% of nodes (paper: 31.4%% of C instances)\n",
		100*st.SharedFrac)
	fmt.Printf("  |L| = %d, |M| = %d\n\n", st.TopoLen, st.MatrixPairs)

	run := func(label string, stmts []string) {
		for _, stmt := range stmts {
			rep, err := view.Execute(ctx, stmt)
			if err != nil {
				fmt.Printf("  [%s] %s\n    rejected: %v\n", label, stmt, err)
				continue
			}
			fmt.Printf("  [%s] %s\n", label, clip(stmt, 100))
			fmt.Printf("    |r[[p]]|=%d |Ep|=%d ΔV+%d/-%d ΔR=%d mutation(s)\n",
				rep.Targets, rep.Edges, rep.DVInserts, rep.DVDeletes, len(rep.Changes))
			fmt.Printf("    (a) eval=%v  (b) translate+apply=%v  (c) maintain=%v\n",
				rep.Timings.Eval, rep.Timings.Translate+rep.Timings.Apply, rep.Timings.Maintain)
			if err := view.CheckConsistency(); err != nil {
				log.Fatal("INVARIANT BROKEN: ", err)
			}
		}
	}

	// Insertions first: the workload generator addresses the initial view,
	// and W1 deletions remove whole value classes.
	fmt.Println("== one insertion per workload class (Fig.11 d–f) ==")
	run("W1 ins", syn.InsertWorkload(rxview.W1, 1, 4))
	run("W2 ins", syn.InsertWorkload(rxview.W2, 1, 5))
	run("W3 ins", syn.InsertWorkload(rxview.W3, 1, 6))
	fmt.Println()
	fmt.Println("== one deletion per workload class (Fig.11 a–c) ==")
	run("W1 del", syn.DeleteWorkload(rxview.W1, 1, 1))
	run("W2 del", syn.DeleteWorkload(rxview.W2, 1, 2))
	run("W3 del", syn.DeleteWorkload(rxview.W3, 1, 3))
	fmt.Println()
	fmt.Println("final:", view.Stats())
	fmt.Println("every update verified against a from-scratch republication ✓")
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
