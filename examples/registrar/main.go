// Registrar walk-through: exercises the parts of the pipeline the quickstart
// skips — DTD validation rejections (§2.4), SAT-derived column values
// (§4.3), relational-side rejections, and group updates whose ΔR covers
// several view edges at once.
package main

import (
	"context"
	"fmt"
	"log"

	"rxview"
)

func main() {
	ctx := context.Background()
	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		log.Fatal(err)
	}
	view, err := rxview.Open(atg, db, rxview.WithForceSideEffects())
	if err != nil {
		log.Fatal(err)
	}
	show := func(stmt string) {
		fmt.Println("==", stmt, "==")
		rep, err := view.Execute(ctx, stmt)
		switch {
		case err != nil:
			fmt.Println("  rejected:", err)
		case !rep.Applied:
			fmt.Println("  no-op (nothing matched / edge already present)")
		default:
			fmt.Printf("  applied: |r[[p]]|=%d |Ep|=%d ΔV+%d/-%d gc=%d\n",
				rep.Targets, rep.Edges, rep.DVInserts, rep.DVDeletes, rep.Removed)
			for _, m := range rep.Changes {
				fmt.Println("   ΔR:", m)
			}
		}
		if err := view.CheckConsistency(); err != nil {
			log.Fatal("INVARIANT BROKEN: ", err)
		}
		fmt.Println()
	}

	fmt.Println("Initial view:", view.Stats())
	fmt.Println()

	// --- DTD validation (§2.4): structurally illegal updates are rejected
	// at the schema level, before touching any data.
	show(`insert student(ssn="S07", name="Eve") into //course[cno="CS650"]/prereq`)
	show(`delete //course/cno`)

	// --- SAT-derived values (§4.3): inserting a brand-new course as a
	// prerequisite leaves its dept column undetermined. Choosing "CS" would
	// surface the course at the top level of the view (an unrequested
	// change), so the solver picks a fresh non-CS department.
	show(`insert course(cno="CS301", title="Operating Systems") into //course[cno="CS650"]/prereq`)
	if row, ok := db.Lookup("course", rxview.Str("CS301")); ok {
		fmt.Printf("   -> SAT chose dept = %q for CS301 (anything but CS)\n\n", row[2].Text())
	}

	// --- Required conditions: inserting at the top level FORCES dept=CS.
	show(`insert course(cno="CS105", title="Discrete Math") into .`)
	if row, ok := db.Lookup("course", rxview.Str("CS105")); ok {
		fmt.Printf("   -> the root rule requires dept = %q\n\n", row[2].Text())
	}

	// --- Relational-side rejection: EE100 exists with dept=EE; it cannot
	// be made a top-level course of the CS view without a side effect on
	// the base data the user did not request.
	show(`insert course(cno="EE100", title="Circuits") into .`)

	// --- Group deletion translated to a single base deletion: removing a
	// student from every course deletes the student tuple (Algorithm
	// delete prefers the covering source).
	show(`insert student(ssn="S05", name="Max") into //takenBy`) // enroll everywhere first
	show(`delete //student[ssn="S05"]`)

	// --- Deleting a shared course from one prerequisite list only: the
	// prereq tuple goes, the course itself survives.
	show(`delete course[cno="CS650"]/prereq/course[cno="CS320"]`)
	left, _ := view.Query(ctx, `//course[cno="CS320"]`)
	fmt.Printf("CS320 still published %d time(s) (top level)\n\n", len(left))

	// --- Recursive deletion with cascade garbage collection: removing
	// CS650 entirely strands its prereq/takenBy subtrees.
	show(`delete //course[cno="CS650"]`)

	fmt.Println("Final view:", view.Stats())
	xml, err := view.XML(10000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(xml)
}
