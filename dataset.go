package rxview

import "rxview/internal/workload"

// NewRegistrar builds the paper's running example (Example 1): the registrar
// schema R0, the recursive course/prereq DTD D0, the ATG σ0 of Fig.2, and
// the instance used throughout the examples (courses CS650 → CS320 → CS240,
// students S01/S02). Open the returned pair to get the view of Fig.1.
func NewRegistrar() (*ATG, *DB, error) {
	reg, err := workload.NewRegistrar()
	if err != nil {
		return nil, nil, err
	}
	return &ATG{c: reg.ATG}, &DB{db: reg.DB}, nil
}

// MustRegistrar is NewRegistrar that panics on error.
func MustRegistrar() (*ATG, *DB) {
	a, db, err := NewRegistrar()
	if err != nil {
		panic(err)
	}
	return a, db
}

// SyntheticConfig parameterizes the synthetic dataset of the paper's
// evaluation (§5): a recursive hierarchy over base relations C, F, H, CU
// with tunable size, depth, fanout and subtree sharing.
type SyntheticConfig struct {
	NC        int     // |C| (the size reported on the x-axes of Fig.11)
	Levels    int     // hierarchy depth; default 6
	Fanout    int     // H children per published C; default 3
	ShareFrac float64 // probability a child pick reuses a linked child; default 0.31
	Seed      int64
}

// WorkloadClass is one of the paper's three update-workload classes (§5):
// W1 targets nodes by value (//C[val=...]), W2 by a rooted child path, W3 by
// a mixed descendant path.
type WorkloadClass int

// Workload classes.
const (
	W1 WorkloadClass = WorkloadClass(workload.W1)
	W2 WorkloadClass = WorkloadClass(workload.W2)
	W3 WorkloadClass = WorkloadClass(workload.W3)
)

// String names the class.
func (c WorkloadClass) String() string { return workload.Class(c).String() }

// Synthetic bundles a generated §5 dataset with its workload generator.
type Synthetic struct {
	syn *workload.Synthetic
	// ATG and DB are the generated grammar and instance; Open them to
	// publish the view the workloads address.
	ATG *ATG
	DB  *DB
}

// NewSynthetic generates the dataset.
func NewSynthetic(cfg SyntheticConfig) (*Synthetic, error) {
	syn, err := workload.NewSynthetic(workload.SyntheticConfig{
		NC:        cfg.NC,
		Levels:    cfg.Levels,
		Fanout:    cfg.Fanout,
		ShareFrac: cfg.ShareFrac,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Synthetic{syn: syn, ATG: &ATG{c: syn.ATG}, DB: &DB{db: syn.DB}}, nil
}

// InsertWorkload generates n insertion statements of the given class
// (for View.Execute), addressed at the initial view.
func (s *Synthetic) InsertWorkload(class WorkloadClass, n int, seed int64) []string {
	return stmtsOf(s.syn.InsertWorkload(workload.Class(class), n, seed))
}

// DeleteWorkload generates n deletion statements of the given class.
func (s *Synthetic) DeleteWorkload(class WorkloadClass, n int, seed int64) []string {
	return stmtsOf(s.syn.DeleteWorkload(workload.Class(class), n, seed))
}

// Roots returns the level-0 C keys (published at the top level of the view)
// — valid, single-occurrence targets for custom update workloads, e.g.
// Insert into //C[key="<root>"]/sub.
func (s *Synthetic) Roots() []int64 {
	return append([]int64(nil), s.syn.Roots...)
}

// FreshKeys allocates n C keys no existing row uses, for custom insertions
// (the generator's key counter advances, so later workloads stay disjoint).
func (s *Synthetic) FreshKeys(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = s.syn.NextKey
		s.syn.NextKey++
	}
	return out
}

func stmtsOf(ops []workload.Op) []string {
	out := make([]string, len(ops))
	for i, op := range ops {
		out[i] = op.Stmt
	}
	return out
}
