package rxview_test

// Round-trip tests of the public replication API: a durable primary's
// ReplSource streamed into a Replica must reproduce the primary's exact
// state — cold catch-up from WAL files, hot records from the live tail,
// checkpoint restore, and the gap-refusal contract.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"rxview"
)

// mustReplica opens an empty follower over a fresh registrar.
func mustReplica(t *testing.T, opts ...rxview.Option) *rxview.Replica {
	t.Helper()
	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rxview.OpenReplica(atg, db, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// pull drains one stream poll into a single wire buffer, simulating the
// bytes a follower reads off an HTTP response body.
func pull(t *testing.T, src *rxview.ReplSource, from uint64) []byte {
	t.Helper()
	var wire bytes.Buffer
	err := src.Stream(context.Background(), from, 20*time.Millisecond,
		func(_ uint64, frame []byte) error {
			wire.Write(frame)
			return nil
		})
	if err != nil {
		t.Fatalf("Stream(from=%d): %v", from, err)
	}
	return wire.Bytes()
}

// replay decodes a wire buffer and applies every record to the replica.
func replay(t *testing.T, rep *rxview.Replica, wire []byte) {
	t.Helper()
	fr := rxview.NewReplFrameReader(bytes.NewReader(wire))
	for {
		rec, err := fr.Next()
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			t.Fatalf("decode stream: %v", err)
		}
		if err := rep.ApplyRecord(rec); err != nil {
			t.Fatalf("apply generation %d: %v", rec.Generation(), err)
		}
	}
}

func TestReplicaRoundTrip(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	primary := mustDurableView(t, dir, rxview.WithForceSideEffects())
	defer primary.Close()

	// History before the source exists is served from the WAL files.
	if _, err := primary.Apply(ctx, rxview.Insert(`.`, "course", rxview.Str("CS900"), rxview.Str("Repl"))); err != nil {
		t.Fatal(err)
	}
	src, err := primary.ReplSource()
	if err != nil {
		t.Fatal(err)
	}
	// History after the source exists flows through the live tail, including
	// a shared-subtree insert, an atomic group, and a cascading delete.
	if _, err := primary.Apply(ctx, rxview.Insert(`//course[cno="CS900"]/takenBy`, "student", rxview.Str("S90"), rxview.Str("Flo"))); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Apply(ctx, rxview.Insert(`course[cno="CS650"]//course[cno="CS320"]/prereq`,
		"course", rxview.Str("CS901"), rxview.Str("Shared"))); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Batch(ctx,
		rxview.Insert(`//course[cno="CS900"]/takenBy`, "student", rxview.Str("S91"), rxview.Str("Gus")),
		rxview.Delete(`//course[cno="CS900"]/takenBy/student[sno="S90"]`),
	); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Apply(ctx, rxview.Delete(`//course[cno="CS901"]`)); err != nil {
		t.Fatal(err)
	}
	if src.Generation() != primary.Generation() {
		t.Fatalf("source watermark %d, primary generation %d", src.Generation(), primary.Generation())
	}

	// Follower: restore the genesis checkpoint, then replay the stream.
	ckGen, state, err := src.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}
	rep := mustReplica(t)
	if err := rep.Restore(ckGen, state); err != nil {
		t.Fatalf("restore at %d: %v", ckGen, err)
	}
	replay(t, rep, pull(t, src, rep.Generation()))

	if rep.Generation() != primary.Generation() {
		t.Fatalf("follower at generation %d, primary at %d", rep.Generation(), primary.Generation())
	}
	if got, want := fingerprint(t, rep.View()), fingerprint(t, primary); got != want {
		t.Fatalf("follower state differs:\n%s\nvs\n%s", got, want)
	}
	if err := rep.View().CheckConsistency(); err != nil {
		t.Fatalf("replayed follower inconsistent: %v", err)
	}
}

func TestReplicaRestoresFromLaterCheckpoint(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	primary := mustDurableView(t, dir)
	defer primary.Close()
	src, err := primary.ReplSource()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Apply(ctx, rxview.Insert(`.`, "course", rxview.Str("CS910"), rxview.Str("Ckpt"))); err != nil {
		t.Fatal(err)
	}
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Apply(ctx, rxview.Insert(`//course[cno="CS910"]/takenBy`, "student", rxview.Str("S92"), rxview.Str("Hal"))); err != nil {
		t.Fatal(err)
	}

	ckGen, state, err := src.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}
	if ckGen != 1 {
		t.Fatalf("newest checkpoint at generation %d, want 1", ckGen)
	}
	rep := mustReplica(t)
	if err := rep.Restore(ckGen, state); err != nil {
		t.Fatal(err)
	}
	if rep.Generation() != 1 {
		t.Fatalf("restored follower at generation %d, want 1", rep.Generation())
	}
	replay(t, rep, pull(t, src, rep.Generation()))
	if got, want := fingerprint(t, rep.View()), fingerprint(t, primary); got != want {
		t.Fatalf("follower state differs:\n%s\nvs\n%s", got, want)
	}
}

func TestReplicaRefusesGapsAndDurability(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	primary := mustDurableView(t, dir)
	defer primary.Close()
	src, err := primary.ReplSource()
	if err != nil {
		t.Fatal(err)
	}
	for _, cno := range []string{"CS920", "CS921", "CS922"} {
		if _, err := primary.Apply(ctx, rxview.Insert(`.`, "course", rxview.Str(cno), rxview.Str("Gap"))); err != nil {
			t.Fatal(err)
		}
	}

	// Decode the full stream but apply only from the second record: the
	// replica (at generation 0) must refuse the gap with the checkpoint
	// taxonomy rather than replay into a wrong state.
	fr := rxview.NewReplFrameReader(bytes.NewReader(pull(t, src, 0)))
	first, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	second, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	rep := mustReplica(t)
	if err := rep.ApplyRecord(second); !errors.Is(err, rxview.ErrCheckpointMismatch) {
		t.Fatalf("gap apply error = %v, want ErrCheckpointMismatch", err)
	}
	if rep.Generation() != 0 {
		t.Fatalf("refused record advanced the follower to %d", rep.Generation())
	}
	if err := rep.ApplyRecord(first); err != nil {
		t.Fatalf("contiguous record refused: %v", err)
	}

	// A non-durable view cannot stream; a replica cannot be durable.
	plain := mustView(t)
	if _, err := plain.ReplSource(); err == nil {
		t.Fatal("ReplSource on a non-durable view succeeded")
	}
	atg, db, err := rxview.NewRegistrar()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rxview.OpenReplica(atg, db, rxview.WithDurability(t.TempDir())); err == nil {
		t.Fatal("durable replica was allowed")
	}
}
