// Package obs is the public face of the telemetry core in
// rxview/internal/obs. It contains no logic of its own — only type
// aliases and thin forwards — and exists so packages outside the
// internal tree (the server layer, the command-line tools) can register
// and read metrics without importing internal packages directly. The
// internal-boundary lint rule lists this package as a sanctioned
// gateway, the same standing the root rxview package has.
//
// See the internal package's documentation for the design: atomic
// fast-path recording vs the locked Gather/snapshot side, the Default
// versus per-instance registry split, and the SetEnabled switch the
// overhead benchmark uses.
package obs

import (
	"io"

	iobs "rxview/internal/obs"
)

// Core registry types, aliased so values flow freely between the public
// and internal halves of the instrumentation.
type (
	Registry     = iobs.Registry
	Counter      = iobs.Counter
	Gauge        = iobs.Gauge
	Histogram    = iobs.Histogram
	HistSnapshot = iobs.HistSnapshot
	Label        = iobs.Label
	Family       = iobs.Family
	Sample       = iobs.Sample
	SlowLog      = iobs.SlowLog
	SlowEntry    = iobs.SlowEntry
	ParsedFamily = iobs.ParsedFamily
	ParsedSample = iobs.ParsedSample
	Span         = iobs.Span
)

// StartSpan opens a timed span over h (nil for a pure timer); free when
// instrumentation is disabled.
func StartSpan(h *Histogram) Span { return iobs.StartSpan(h) }

// NewRegistry returns an empty registry for per-instance metric sets.
func NewRegistry() *Registry { return iobs.NewRegistry() }

// Default returns the process-wide registry (pipeline, WAL, caches).
func Default() *Registry { return iobs.Default() }

// Enabled reports whether timing instrumentation is collected.
func Enabled() bool { return iobs.Enabled() }

// SetEnabled turns timing instrumentation on or off process-wide;
// counters and gauges keep counting either way.
func SetEnabled(on bool) { iobs.SetEnabled(on) }

// NewSlowLog returns a slow-operation ring buffer of the given capacity.
func NewSlowLog(capacity int) *SlowLog { return iobs.NewSlowLog(capacity) }

// WritePrometheus encodes the registries in Prometheus text exposition.
func WritePrometheus(w io.Writer, regs ...*Registry) error {
	return iobs.WritePrometheus(w, regs...)
}

// WriteVars encodes the registries as a JSON object for /debug/vars.
func WriteVars(w io.Writer, regs ...*Registry) error {
	return iobs.WriteVars(w, regs...)
}

// GatherAll merges the families of several registries in argument order.
func GatherAll(regs ...*Registry) []Family { return iobs.GatherAll(regs...) }

// ParseExposition parses Prometheus text back into families — the
// verification half used by tests and xviewctl.
func ParseExposition(r io.Reader) ([]ParsedFamily, error) {
	return iobs.ParseExposition(r)
}

// LatencyBounds returns the standard latency bucket bounds in seconds.
func LatencyBounds() []float64 { return iobs.LatencyBounds() }

// CountBounds returns doubling bucket bounds for small-count histograms.
func CountBounds(n int) []float64 { return iobs.CountBounds(n) }

// ExpBounds returns n exponential bucket bounds start, start*factor, ....
func ExpBounds(start, factor float64, n int) []float64 {
	return iobs.ExpBounds(start, factor, n)
}
