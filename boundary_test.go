package rxview

// Guards the API boundary: nothing outside internal/ may import
// rxview/internal/... except the root rxview package itself (the single
// supported gateway to the implementation) and cmd/xviewlint (which links
// the analyzer suite).
//
// The predicate lives in internal/lint/internalboundary so `go test` and
// `go vet -vettool=xviewlint` enforce exactly the same rule; this test is
// a thin wrapper over its tree walk. It is in package rxview (not
// rxview_test) because an external test package could not import
// internal/lint without itself breaching the boundary it checks.

import (
	"testing"

	"rxview/internal/lint/internalboundary"
)

func TestOnlyRootPackageImportsInternal(t *testing.T) {
	violations, err := internalboundary.CheckTree(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Errorf("%s: package %s imports %s: only the root rxview package may import internal packages",
			v.Pos, v.PkgPath, v.Import)
	}
}
