package rxview_test

// Guards the API boundary: nothing outside internal/ may import
// rxview/internal/... except the root rxview package itself, which is the
// single supported gateway to the implementation.

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestOnlyRootPackageImportsInternal(t *testing.T) {
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "internal" || strings.HasPrefix(d.Name(), ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		fset := token.NewFileSet()
		f, perr := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if perr != nil {
			t.Errorf("%s: %v", path, perr)
			return nil
		}
		// The root rxview package (package clause "rxview", repo root) is
		// the only permitted gateway to internal/.
		inRoot := !strings.Contains(path, string(filepath.Separator))
		gateway := inRoot && f.Name.Name == "rxview"
		for _, imp := range f.Imports {
			val, _ := strconv.Unquote(imp.Path.Value)
			if strings.HasPrefix(val, "rxview/internal/") && !gateway {
				t.Errorf("%s (package %s) imports %s: only the root rxview package may import internal packages",
					path, f.Name.Name, val)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
