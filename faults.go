package rxview

import (
	"sync/atomic"

	"rxview/internal/fault"
)

// Chaos gateway: the public face of the internal fault-injection framework
// (internal/fault), for operators and load generators. The internal package
// is behind the module's internal boundary; xviewd's -chaos flag, the
// server tests and benchrunner's chaos experiment all arm faults through
// here. Injection is process-wide and deterministic for a given (spec,
// seed) pair; when disarmed the instrumented code paths cost one atomic
// load.

// EnableChaos arms a process-wide fault-injection plan from a chaos spec —
// a semicolon-separated list of fault points with options:
//
//	point[:opt[,opt...]][;point...]
//
// where each opt is one of after=N (skip the first N hits), every=N (fire
// every Nth eligible hit), count=N (fire at most N times), prob=F (fire
// with probability F instead of deterministically), latency=DUR (stall for
// DUR instead of returning an error). Example:
//
//	wal.fsync:after=100,count=5;wal.slow-io:latency=5ms,every=10
//
// Arming replaces any previously armed plan. The spec's points must name
// cataloged fault points (see FaultPoints); an unknown point or malformed
// option is an error and leaves the previous plan armed.
func EnableChaos(spec string, seed int64) error {
	rules, err := fault.ParseSpec(spec)
	if err != nil {
		return err
	}
	p, err := fault.NewPlan(seed, rules...)
	if err != nil {
		return err
	}
	fault.Install(p)
	armedPlan.Store(p)
	return nil
}

// armedPlan remembers the plan EnableChaos installed so ChaosFires can
// report firing counts; activation itself is owned by the fault package.
var armedPlan atomic.Pointer[fault.Plan]

// ChaosFires returns how many times each fault point has fired under the
// chaos plan most recently armed by EnableChaos, keyed by point name. The
// counts survive DisableChaos (a soak reads its tally after disarming)
// and reset when a new plan is armed. Nil when EnableChaos was never
// called.
func ChaosFires() map[string]uint64 {
	p := armedPlan.Load()
	if p == nil {
		return nil
	}
	fires := p.Fires()
	out := make(map[string]uint64, len(fires))
	for pt, n := range fires {
		out[string(pt)] = n
	}
	return out
}

// DisableChaos disarms fault injection, restoring the zero-cost disabled
// path. Safe to call when nothing is armed.
func DisableChaos() { fault.Uninstall() }

// ChaosActive reports whether a fault-injection plan is armed.
func ChaosActive() bool { return fault.Active() }

// FaultPoints returns the catalog of named fault points a chaos spec may
// reference, in stable order.
func FaultPoints() []string {
	pts := fault.Catalog()
	out := make([]string, len(pts))
	for i, p := range pts {
		out[i] = string(p)
	}
	return out
}
